package multimap

// The "tenants" benchmark exercises the pool's whole tenant lifecycle
// under live traffic: tenant A serves a closed-loop QoS burst workload
// on drive 0 while tenant B churns on drive 1 — created, filled past
// its overflow capacity (absorbed online by the pool's WithAutoGrow),
// grown further by an explicit Grow, snapshotted, cloned, queried on
// the clone, dirtied past the snapshot (copy-on-write faults), and
// destroyed — for several rounds. The result serializes to the stable
// "mmbench-tenants/v1" JSON schema the CI bench-trajectory step
// validates alongside the burst artifacts.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// TenantsSchema versions the tenants benchmark's JSON artifact. Bump
// it whenever a field changes meaning; the trajectory checker accepts
// every version it knows and refuses anything else.
const TenantsSchema = "mmbench-tenants/v1"

// tenantsPhases is the canonical lifecycle order every round follows
// and every artifact must report.
var tenantsPhases = []string{
	"create", "fill", "grow", "snapshot", "clone", "query_clone", "cow_writes", "destroy",
}

// TenantsPhase aggregates one lifecycle phase across all churn rounds.
type TenantsPhase struct {
	Phase string `json:"phase"`
	// Ops counts the phase's lifecycle operations (inserts for fill and
	// cow_writes, API calls otherwise) across rounds.
	Ops int     `json:"ops"`
	Ms  float64 `json:"ms"` // total host wall ms across rounds
}

// TenantsResult is the tenants benchmark's full artifact.
type TenantsResult struct {
	Schema      string  `json:"schema"`
	Disk        string  `json:"disk"`
	Scale       float64 `json:"scale"`
	Drives      int     `json:"drives"`
	Rounds      int     `json:"rounds"`
	FairQuantum int64   `json:"fair_quantum"`
	WallSeconds float64 `json:"wall_seconds"`
	// GrownBlocks is the capacity added by online Grow calls — direct
	// evidence the overflow-exhausted tenant kept growing without a
	// re-open.
	GrownBlocks int64 `json:"grown_blocks"`
	// AutoGrownBlocks is the capacity the pool's WithAutoGrow hook
	// allocated when tenant B's fill exhausted its overflow pool —
	// direct evidence auto-grow absorbed the exhaustion instead of
	// erroring. Optional in the v1 schema: artifacts from before
	// auto-grow existed decode as 0.
	AutoGrownBlocks int64 `json:"auto_grown_blocks,omitempty"`
	// CowFaultBlocks counts parent blocks copied out by post-snapshot
	// writes — direct evidence the copy-on-write path engaged.
	CowFaultBlocks int64 `json:"cow_fault_blocks"`
	// BurstOps and the percentiles describe tenant A's live traffic:
	// the ops its sessions completed while tenant B churned, and their
	// host-observed latency.
	BurstOps   int            `json:"burst_ops"`
	BurstP50Ms float64        `json:"burst_p50_ms"`
	BurstP99Ms float64        `json:"burst_p99_ms"`
	Phases     []TenantsPhase `json:"phases"`
}

// tenantsDims scales the two tenants' dataset shapes. Tenant B stays
// small so filling it past its overflow capacity is cheap.
func tenantsDims(scale float64) (a, b []int) {
	f := math.Cbrt(scale)
	d := func(base, floor int) int {
		n := int(float64(base)*f + 0.5)
		if n < floor {
			n = floor
		}
		return n
	}
	a = []int{d(40, 8), d(16, 6), d(8, 4)}
	b = []int{d(12, 6), d(6, 4), d(4, 3)}
	return a, b
}

// tenantsPctl returns the p-quantile of an ascending-sorted sample by
// linear rank interpolation (same method as the burst artifact).
func tenantsPctl(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := p * float64(n-1)
	lo := int(math.Floor(rank))
	if lo >= n-1 {
		return sorted[n-1]
	}
	return sorted[lo] + (rank-float64(lo))*(sorted[lo+1]-sorted[lo])
}

// RunTenants runs the multi-tenant churn benchmark (experiment id
// "tenants") and returns its table together with the structured
// result, for callers that persist the trajectory (mmbench -json).
// Honored config fields: Disks (first model, hosted twice), Scale,
// Seed, Clients (tenant A burst sessions, default 3), FairQuantum and
// QoSClasses (tenant A admission), WriteBack/WBWatermark/WBInterval
// (tenant B's write path).
func RunTenants(cfg ExperimentConfig) (*ExperimentTable, *TenantsResult, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.Scale < 0 || cfg.Scale > 1 {
		return nil, nil, fmt.Errorf("multimap: scale %v outside (0,1]", cfg.Scale)
	}
	if cfg.FairQuantum < 0 {
		return nil, nil, fmt.Errorf("multimap: fair-share quantum must be non-negative")
	}
	model := AtlasTenKIII
	if len(cfg.Disks) > 0 {
		model = cfg.Disks[0]
	}
	clients := cfg.Clients
	if clients == 0 {
		clients = 3
	}
	if clients < 1 {
		return nil, nil, fmt.Errorf("multimap: clients must be non-negative")
	}
	const rounds = 2
	ctx := context.Background()
	dimsA, dimsB := tenantsDims(cfg.Scale)

	// Auto-grow sized to roughly one overflow extent per member disk per
	// trigger, so each exhaustion-and-retry shows as a modest, countable
	// step in auto_grown_blocks.
	const autoGrowInc = 256
	p, err := OpenPool(WithPoolDrives(model, model), WithAutoGrow(autoGrowInc))
	if err != nil {
		return nil, nil, err
	}

	// Tenant A: the long-lived serving tenant, pinned to drive 0, with
	// weighted-fair QoS when the run asks for it.
	aOpts := []Option{WithDrives(0), WithCache(1 << 18)}
	classes := cfg.QoSClasses
	if cfg.FairQuantum > 0 {
		if len(classes) == 0 {
			classes = []QoSClass{{Name: "interactive", Weight: 1}, {Name: "bulk", Weight: 4}}
		}
		for _, cl := range classes {
			aOpts = append(aOpts, WithQoSClass(cl.Name, cl.Weight, cl.Urgent))
		}
		aOpts = append(aOpts, WithFairShare(cfg.FairQuantum))
	}
	ta, err := p.Create(ctx, "tenant-a", MultiMap, dimsA, aOpts...)
	if err != nil {
		return nil, nil, err
	}

	// Burst workers: closed-loop sessions on tenant A that keep serving
	// until the churn loop finishes. Each completes at least one op so
	// every artifact carries live-traffic evidence.
	type worker struct {
		hostMs []float64
		err    error
	}
	workers := make([]*worker, clients)
	done := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		w := &worker{}
		workers[i] = w
		class := "interactive"
		if cfg.FairQuantum > 0 && i%2 == 1 {
			class = "bulk"
		}
		sess := ta.Store().BeginQoS(class)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer sess.Close(context.Background())
			for q := 0; ; q++ {
				if q > 0 {
					select {
					case <-done:
						return
					default:
					}
				}
				t0 := time.Now()
				var err error
				if (i+q)%2 == 0 {
					_, err = sess.Beam(ctx, 0, []int{0, (q * 3) % dimsA[1], q % dimsA[2]})
				} else {
					lo := []int{(q * 5) % (dimsA[0] / 2), 0, 0}
					hi := []int{lo[0] + dimsA[0]/4, dimsA[1] / 2, dimsA[2] / 2}
					_, err = sess.RangeQuery(ctx, lo, hi)
				}
				if err != nil {
					w.err = fmt.Errorf("burst client %d op %d: %w", i, q, err)
					return
				}
				w.hostMs = append(w.hostMs, float64(time.Since(t0))/float64(time.Millisecond))
			}
		}(i)
	}

	res := &TenantsResult{
		Schema: TenantsSchema,
		Disk:   string(model), Scale: cfg.Scale,
		Drives: 2, Rounds: rounds, FairQuantum: cfg.FairQuantum,
	}
	phases := make(map[string]*TenantsPhase, len(tenantsPhases))
	for _, name := range tenantsPhases {
		ph := &TenantsPhase{Phase: name}
		phases[name] = ph
	}
	step := func(phase string, ops int, f func() error) error {
		t0 := time.Now()
		err := f()
		ph := phases[phase]
		ph.Ops += ops
		ph.Ms += float64(time.Since(t0)) / float64(time.Millisecond)
		return err
	}

	// The churn loop: tenant B's full lifecycle on drive 1, every
	// round, while tenant A's workers keep serving.
	churn := func() error {
		bOpts := []Option{
			WithDrives(1),
			Updatable(UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1)}),
		}
		if cfg.WriteBack {
			bOpts = append(bOpts, WithWriteBack(cfg.WBWatermark, cfg.WBInterval))
		}
		cell := []int{0, 0, 0}
		for r := 0; r < rounds; r++ {
			var tb *Tenant
			if err := step("create", 1, func() (err error) {
				tb, err = p.Create(ctx, "tenant-b", MultiMap, dimsB, bOpts...)
				return err
			}); err != nil {
				return err
			}
			// Fill one cell's chain past the shard's initial overflow pool —
			// the §4.6 growth limit. With WithAutoGrow on, exhaustion never
			// surfaces: the pool grows the tenant online mid-insert, visible
			// as an allocated-capacity step, and the fill keeps going.
			const fillCap = 100000
			initial := tb.Blocks()
			fills := 0
			if err := step("fill", 0, func() error {
				for fills < fillCap {
					if _, err := tb.Store().Insert(ctx, cell); err != nil {
						if errors.Is(err, core.ErrOverflowExhausted) {
							return fmt.Errorf("multimap: tenants: auto-grow failed to absorb overflow exhaustion: %w", err)
						}
						return err
					}
					fills++
					if tb.Blocks() > initial {
						return nil // auto-grow engaged
					}
				}
				return fmt.Errorf("multimap: tenants: overflow never exhausted after %d inserts", fillCap)
			}); err != nil {
				return err
			}
			phases["fill"].Ops += fills
			before := tb.Blocks()
			if err := step("grow", 1, func() error {
				if err := p.Grow(ctx, "tenant-b", before/2+1); err != nil {
					return err
				}
				_, err := tb.Store().Insert(ctx, cell) // the blocked insert now fits
				return err
			}); err != nil {
				return err
			}
			res.GrownBlocks += tb.Blocks() - before
			var snap *Snapshot
			if err := step("snapshot", 1, func() (err error) {
				snap, err = p.Snapshot(ctx, "tenant-b")
				return err
			}); err != nil {
				return err
			}
			var tc *Tenant
			if err := step("clone", 1, func() (err error) {
				tc, err = p.Clone(ctx, snap, "tenant-b-clone")
				return err
			}); err != nil {
				return err
			}
			if err := step("query_clone", 2, func() error {
				if _, err := tc.Store().FetchCell(ctx, cell); err != nil {
					return err
				}
				_, err := tc.Store().Beam(ctx, 0, []int{0, 0, 0})
				return err
			}); err != nil {
				return err
			}
			// Dirty the parent past the snapshot: these inserts must fault
			// shared blocks into private copies before landing.
			const cowInserts = 8
			if err := step("cow_writes", cowInserts, func() error {
				for i := 0; i < cowInserts; i++ {
					st, err := tb.Store().Insert(ctx, cell)
					if err != nil {
						return err
					}
					res.CowFaultBlocks += st.CowFaultBlocks
				}
				return tb.Store().Flush(ctx)
			}); err != nil {
				return err
			}
			if err := step("destroy", 3, func() error {
				if err := p.Destroy(ctx, "tenant-b-clone"); err != nil {
					return err
				}
				if err := p.Destroy(ctx, "tenant-b"); err != nil {
					return err
				}
				snap.Free()
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}
	churnErr := churn()
	close(done)
	wg.Wait()
	defer p.Destroy(ctx, "tenant-a")
	if churnErr != nil {
		return nil, nil, churnErr
	}
	for _, w := range workers {
		if w.err != nil {
			return nil, nil, w.err
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	for _, u := range p.Usage() {
		res.AutoGrownBlocks += u.AutoGrownBlocks
	}

	var lat []float64
	for _, w := range workers {
		lat = append(lat, w.hostMs...)
	}
	sort.Float64s(lat)
	res.BurstOps = len(lat)
	res.BurstP50Ms = tenantsPctl(lat, 0.50)
	res.BurstP99Ms = tenantsPctl(lat, 0.99)
	for _, name := range tenantsPhases {
		res.Phases = append(res.Phases, *phases[name])
	}

	qosMode := "off"
	if cfg.FairQuantum > 0 {
		qosMode = fmt.Sprintf("quantum %d", cfg.FairQuantum)
	}
	t := &ExperimentTable{
		ID: "tenants",
		Title: fmt.Sprintf("Multi-tenant churn on 2x %s, %d rounds, QoS %s, %d blocks grown (%d auto), %d COW fault blocks",
			model, rounds, qosMode, res.GrownBlocks, res.AutoGrownBlocks, res.CowFaultBlocks),
		Header: []string{"phase", "ops", "total ms"},
	}
	for _, ph := range res.Phases {
		t.Rows = append(t.Rows, []string{ph.Phase, fmt.Sprint(ph.Ops), fmt.Sprintf("%.3f", ph.Ms)})
	}
	t.Rows = append(t.Rows, []string{"live burst (p50/p99 ms)", fmt.Sprint(res.BurstOps),
		fmt.Sprintf("%.3f / %.3f", res.BurstP50Ms, res.BurstP99Ms)})
	return t, res, nil
}

// tenantsRequiredKeys is the explicit key diff ValidateTenantsJSON
// demands beyond a successful decode, mirroring the burst checker.
var tenantsRequiredKeys = struct{ top, phase []string }{
	top: []string{"schema", "disk", "scale", "drives", "rounds", "fair_quantum", "wall_seconds",
		"grown_blocks", "cow_fault_blocks", "burst_ops", "burst_p50_ms", "burst_p99_ms", "phases"},
	phase: []string{"phase", "ops", "ms"},
}

// ValidateTenants checks a tenants artifact's invariants: the known
// schema, every lifecycle phase present once in canonical order with
// traffic where the lifecycle demands it, online growth and
// copy-on-write evidence present, and a sane burst latency pair.
func ValidateTenants(res *TenantsResult) error {
	if res.Schema != TenantsSchema {
		return fmt.Errorf("tenants: schema %q, want %q", res.Schema, TenantsSchema)
	}
	if res.Disk == "" {
		return fmt.Errorf("tenants: missing disk name")
	}
	if res.Drives < 2 {
		return fmt.Errorf("tenants: %d drives, want at least 2 (live traffic needs its own drive)", res.Drives)
	}
	if res.Rounds < 1 {
		return fmt.Errorf("tenants: non-positive rounds %d", res.Rounds)
	}
	if res.FairQuantum < 0 {
		return fmt.Errorf("tenants: negative fair_quantum %d", res.FairQuantum)
	}
	if res.WallSeconds <= 0 {
		return fmt.Errorf("tenants: non-positive wall_seconds %v", res.WallSeconds)
	}
	if res.GrownBlocks <= 0 {
		return fmt.Errorf("tenants: grown_blocks %d — the lifecycle must grow the tenant online", res.GrownBlocks)
	}
	if res.AutoGrownBlocks < 0 {
		return fmt.Errorf("tenants: negative auto_grown_blocks %d", res.AutoGrownBlocks)
	}
	if res.CowFaultBlocks <= 0 {
		return fmt.Errorf("tenants: cow_fault_blocks %d — post-snapshot writes must fault", res.CowFaultBlocks)
	}
	if res.BurstOps < 1 {
		return fmt.Errorf("tenants: no live burst traffic")
	}
	if res.BurstP50Ms < 0 || res.BurstP50Ms > res.BurstP99Ms {
		return fmt.Errorf("tenants: burst latency out of order: p50=%v p99=%v", res.BurstP50Ms, res.BurstP99Ms)
	}
	if len(res.Phases) != len(tenantsPhases) {
		return fmt.Errorf("tenants: %d phases, want %d", len(res.Phases), len(tenantsPhases))
	}
	for i, ph := range res.Phases {
		if ph.Phase != tenantsPhases[i] {
			return fmt.Errorf("tenants: phases[%d] is %q, want %q", i, ph.Phase, tenantsPhases[i])
		}
		if ph.Ops < 1 {
			return fmt.Errorf("tenants: phase %q has no operations", ph.Phase)
		}
		if ph.Ms < 0 {
			return fmt.Errorf("tenants: phase %q negative ms %v", ph.Phase, ph.Ms)
		}
	}
	return nil
}

// ValidateTenantsJSON checks raw JSON against the mmbench-tenants
// schema: every required key present (missing keys decode silently, so
// this is an explicit diff) and the decoded result's invariants hold.
// The CI bench-trajectory step runs it over every committed tenants
// artifact.
func ValidateTenantsJSON(data []byte) (*TenantsResult, error) {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, fmt.Errorf("tenants: not a JSON object: %w", err)
	}
	for _, k := range tenantsRequiredKeys.top {
		if _, ok := top[k]; !ok {
			return nil, fmt.Errorf("tenants: missing key %q", k)
		}
	}
	var phases []map[string]json.RawMessage
	if err := json.Unmarshal(top["phases"], &phases); err != nil {
		return nil, fmt.Errorf("tenants: phases not a JSON array: %w", err)
	}
	for i, ph := range phases {
		for _, k := range tenantsRequiredKeys.phase {
			if _, ok := ph[k]; !ok {
				return nil, fmt.Errorf("tenants: phases[%d] missing key %q", i, k)
			}
		}
	}
	var res TenantsResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	if err := ValidateTenants(&res); err != nil {
		return nil, err
	}
	return &res, nil
}
