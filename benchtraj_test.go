package multimap

import (
	"os"
	"testing"
)

// TestCommittedBenchTrajectory keeps the committed burst-latency
// artifacts honest: every BENCH_*.json must parse under its declared
// mmbench-burst schema version (the same check CI's bench-trajectory
// step runs via cmd/benchtraj) and must actually be a write-back run
// with group-commit evidence — the configuration whose latency
// trajectory the artifacts persist. BENCH_7.json additionally pins the
// QoS-on point: weighted-fair admission recorded via fair_quantum and
// the 1:4 interactive:bulk weights.
func TestCommittedBenchTrajectory(t *testing.T) {
	for _, name := range []string{"BENCH_6.json", "BENCH_7.json"} {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ValidateBurstJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.WriteBack {
			t.Fatalf("%s is not a write-back run: %+v", name, res)
		}
		if res.Coalesced == 0 || res.FlushBatches == 0 {
			t.Fatalf("%s shows no group commit: %+v", name, res)
		}
		if name != "BENCH_7.json" {
			continue
		}
		if res.FairQuantum <= 0 {
			t.Fatalf("%s is not a QoS-on run: %+v", name, res)
		}
		want := map[string]int{"interactive": 1, "bulk": 4, "writer": 1}
		for _, bc := range res.Classes {
			if bc.Weight != want[bc.Class] {
				t.Fatalf("%s class %q weight %d, want %d", name, bc.Class, bc.Weight, want[bc.Class])
			}
		}
	}
}
