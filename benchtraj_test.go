package multimap

import (
	"os"
	"testing"
)

// TestCommittedBenchTrajectory keeps the committed burst-latency
// artifact honest: BENCH_6.json must parse under the mmbench-burst/v1
// schema (the same check CI's bench-trajectory step runs via
// cmd/benchtraj) and must actually be a write-back run with
// group-commit evidence — the configuration whose p50/p99/p999
// trajectory this artifact persists.
func TestCommittedBenchTrajectory(t *testing.T) {
	data, err := os.ReadFile("BENCH_6.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateBurstJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WriteBack {
		t.Fatalf("committed trajectory is not a write-back run: %+v", res)
	}
	if res.Coalesced == 0 || res.FlushBatches == 0 {
		t.Fatalf("committed trajectory shows no group commit: %+v", res)
	}
}
