package multimap

import (
	"encoding/json"
	"os"
	"testing"
)

// TestCommittedBenchTrajectory keeps the committed burst-latency
// artifacts honest: every BENCH_*.json must parse under its declared
// mmbench-burst schema version (the same check CI's bench-trajectory
// step runs via cmd/benchtraj) and must actually be a write-back run
// with group-commit evidence — the configuration whose latency
// trajectory the artifacts persist. BENCH_7.json additionally pins the
// QoS-on point: weighted-fair admission recorded via fair_quantum and
// the 1:4 interactive:bulk weights.
func TestCommittedBenchTrajectory(t *testing.T) {
	for _, name := range []string{"BENCH_6.json", "BENCH_7.json"} {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ValidateBurstJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.WriteBack {
			t.Fatalf("%s is not a write-back run: %+v", name, res)
		}
		if res.Coalesced == 0 || res.FlushBatches == 0 {
			t.Fatalf("%s shows no group commit: %+v", name, res)
		}
		if name != "BENCH_7.json" {
			continue
		}
		if res.FairQuantum <= 0 {
			t.Fatalf("%s is not a QoS-on run: %+v", name, res)
		}
		want := map[string]int{"interactive": 1, "bulk": 4, "writer": 1}
		for _, bc := range res.Classes {
			if bc.Weight != want[bc.Class] {
				t.Fatalf("%s class %q weight %d, want %d", name, bc.Class, bc.Weight, want[bc.Class])
			}
		}
	}
}

// TestCommittedTenantsTrajectory pins the committed multi-tenant churn
// artifact: BENCH_8.json must parse under the mmbench-tenants schema
// (the same check CI runs via cmd/benchtraj) and must carry the
// lifecycle evidence the PR introduced — online growth past the
// initial overflow capacity, copy-on-write faults from post-snapshot
// writes, and live burst traffic served throughout.
func TestCommittedTenantsTrajectory(t *testing.T) {
	data, err := os.ReadFile("BENCH_8.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateTenantsJSON(data)
	if err != nil {
		t.Fatalf("BENCH_8.json: %v", err)
	}
	if res.FairQuantum <= 0 {
		t.Fatalf("BENCH_8.json is not a QoS-on run: %+v", res)
	}
}

// TestValidateTenantsJSON exercises the schema checker's rejections so
// a drifted artifact fails loudly instead of decoding to zero values.
func TestValidateTenantsJSON(t *testing.T) {
	if _, err := ValidateTenantsJSON([]byte(`{"schema":"mmbench-tenants/v9"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := ValidateTenantsJSON([]byte(`not json`)); err == nil {
		t.Error("non-JSON accepted")
	}
	// A structurally complete artifact with a missing key must name it.
	data, err := os.ReadFile("BENCH_8.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, strip := range []string{"grown_blocks", "cow_fault_blocks", "phases"} {
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, strip)
		mutated, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateTenantsJSON(mutated); err == nil {
			t.Errorf("artifact without %q accepted", strip)
		}
	}
}
