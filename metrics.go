package multimap

import (
	"time"

	"repro/internal/engine"
)

// ServiceMetrics is one shard service's slice of a Metrics snapshot.
type ServiceMetrics struct {
	// Shard is the service's shard index (0 on an unsharded store).
	Shard int
	// QueueDepth is the admission backlog: operations queued at the
	// service loop awaiting admission at snapshot time (a gauge).
	QueueDepth int
	// Totals is the service's lifetime bookkeeping — admission batches,
	// merged-batch and max-batch evidence, issued requests, write and
	// flush counters, and the attributed Stats ground truth.
	Totals ServiceTotals
}

// Metrics is a lock-cheap point-in-time snapshot of a store's serving
// state, aggregated across its shard services — the data behind the
// daemon's /v1/events feed. Taking a snapshot never blocks the
// admission path: every component is a mutex-guarded read of counters
// the services already maintain, plus a sort of the retained latency
// window.
type Metrics struct {
	// Shards holds one entry per shard service, in shard order.
	Shards []ServiceMetrics
	// Totals sums the per-shard service totals (MaxBatchChunks takes
	// the maximum; Attributed accumulates).
	Totals ServiceTotals
	// Classes is the per-QoS-class bookkeeping merged across shards and
	// sorted by class name (see Store.ClassTotals).
	Classes []ClassTotals
	// QueueDepth sums the per-shard admission backlogs.
	QueueDepth int
	// CacheHitRate is hits/(hits+misses) over the summed attributed
	// cache counters, 0 when no cache-eligible request has been served.
	CacheHitRate float64
	// Queries counts completed queries (Beam, RangeQuery, FetchCell —
	// streamed or not) recorded by the store's latency ring.
	Queries int64
	// LatencyP50Ms and LatencyP99Ms are host-latency percentiles over
	// the last completed queries (the ring retains the most recent
	// window; zero until the first query completes).
	LatencyP50Ms float64
	LatencyP99Ms float64
}

// Metrics snapshots the store's serving state: per-service queue depth
// and totals, group-wide sums, per-class totals, cache hit rate, and
// completed-query latency percentiles. Safe to call concurrently with
// live traffic from any goroutine; see Metrics for what each field
// means.
func (s *Store) Metrics() Metrics {
	depths := s.grp.QueueDepths()
	totals := s.grp.ServiceTotals()
	m := Metrics{
		Shards:  make([]ServiceMetrics, len(totals)),
		Classes: s.grp.ClassTotals(),
	}
	for i, t := range totals {
		m.Shards[i] = ServiceMetrics{Shard: i, QueueDepth: depths[i], Totals: t}
		m.QueueDepth += depths[i]
		accumulateServiceTotals(&m.Totals, t)
	}
	if probes := m.Totals.Attributed.CacheHits + m.Totals.Attributed.CacheMisses; probes > 0 {
		m.CacheHitRate = float64(m.Totals.Attributed.CacheHits) / float64(probes)
	}
	m.Queries, m.LatencyP50Ms, m.LatencyP99Ms = s.lat.Snapshot()
	return m
}

// accumulateServiceTotals folds one shard's totals into a group-wide
// sum: counters add, the max-batch high-water mark takes the maximum,
// and the attributed Stats accumulate field-wise.
func accumulateServiceTotals(sum *ServiceTotals, t ServiceTotals) {
	sum.Batches += t.Batches
	sum.MergedBatches += t.MergedBatches
	if t.MaxBatchChunks > sum.MaxBatchChunks {
		sum.MaxBatchChunks = t.MaxBatchChunks
	}
	sum.IssuedRequests += t.IssuedRequests
	sum.WriteOps += t.WriteOps
	sum.InvalidatedBlocks += t.InvalidatedBlocks
	sum.FlushBatches += t.FlushBatches
	sum.CoalescedWrites += t.CoalescedWrites
	sum.DirtyBlocks += t.DirtyBlocks
	sum.Cancelled += t.Cancelled
	sum.DeadlineExceeded += t.DeadlineExceeded
	sum.Attributed.Accumulate(t.Attributed)
}

// latencyRingSize is how many completed-query latencies the store
// retains for the Metrics percentiles.
const latencyRingSize = 1024

// recordQueryLatency folds one completed query's host latency into the
// store's metrics ring. Called from the public session operations on
// success only — cancelled or failed queries are counted by the
// cancellation counters instead, so the percentiles describe queries
// that actually delivered their result.
func (s *Store) recordQueryLatency(start time.Time) {
	s.lat.Record(time.Since(start).Seconds() * 1e3)
}

// newLatencyRing builds the store's completed-query latency ring.
func newLatencyRing() *engine.LatencyRing {
	return engine.NewLatencyRing(latencyRingSize)
}
