package multimap

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestUseAfterStoreClose is the regression test for the use-after-Close
// hazard: operations on a closed store — through the store itself or
// through sessions opened before the close — must fail cleanly with
// ErrClosed instead of panicking or hanging on a retired service loop.
func TestUseAfterStoreClose(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	s, err := Open(v, MultiMap, []int{30, 8, 5}, Updatable(UpdateOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	sess := s.Begin()
	if _, err := sess.Beam(context.Background(), 1, []int{5, 0, 3}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent

	ctx := context.Background()
	if _, err := sess.Beam(ctx, 1, []int{5, 0, 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Session.Beam after Store.Close: %v, want ErrClosed", err)
	}
	if _, err := sess.RangeQuery(ctx, []int{0, 0, 0}, []int{2, 2, 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Session.RangeQuery after Store.Close: %v, want ErrClosed", err)
	}
	if _, err := sess.Insert(ctx, []int{1, 1, 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Session.Insert after Store.Close: %v, want ErrClosed", err)
	}
	if _, err := sess.FetchCell(ctx, []int{1, 1, 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Session.FetchCell after Store.Close: %v, want ErrClosed", err)
	}
	if _, err := s.Beam(ctx, 1, []int{5, 0, 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Store.Beam after Store.Close: %v, want ErrClosed", err)
	}
	if _, err := s.LoadCell(ctx, []int{1, 1, 1}, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("Store.LoadCell after Store.Close: %v, want ErrClosed", err)
	}

	// The caller's volume is untouched: a fresh store works.
	fresh, err := Open(v, MultiMap, []int{30, 8, 5})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := fresh.Beam(ctx, 1, []int{5, 0, 3}); err != nil || st.Cells != 8 {
		t.Fatalf("fresh store after old Store.Close: %+v %v", st, err)
	}
}

// TestUseAfterVolumeClose: closing the caller's own volume retires the
// service under live stores; their operations must also surface
// ErrClosed (through the engine layer), not a panic or hang.
func TestUseAfterVolumeClose(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(v, MultiMap, []int{30, 8, 5})
	if err != nil {
		t.Fatal(err)
	}
	sess := s.Begin()
	v.Close()
	if _, err := sess.Beam(context.Background(), 1, []int{5, 0, 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Session.Beam after Volume.Close: %v, want ErrClosed", err)
	}
	if _, err := s.RangeQuery(context.Background(), []int{0, 0, 0}, []int{2, 2, 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Store.RangeQuery after Volume.Close: %v, want ErrClosed", err)
	}
}

// TestErrNotUpdatable: update operations are capability-gated by the
// Updatable open option; queries and plain cell fetches still work.
func TestErrNotUpdatable(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	s, err := Open(v, MultiMap, []int{30, 8, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Updatable() {
		t.Fatal("store without Updatable reports updatable")
	}
	ctx := context.Background()
	if _, err := s.Insert(ctx, []int{1, 1, 1}); !errors.Is(err, ErrNotUpdatable) {
		t.Fatalf("Insert: %v, want ErrNotUpdatable", err)
	}
	if _, err := s.Delete(ctx, []int{1, 1, 1}); !errors.Is(err, ErrNotUpdatable) {
		t.Fatalf("Delete: %v, want ErrNotUpdatable", err)
	}
	if _, err := s.LoadCell(ctx, []int{1, 1, 1}, 4); !errors.Is(err, ErrNotUpdatable) {
		t.Fatalf("LoadCell: %v, want ErrNotUpdatable", err)
	}
	if _, err := s.Points([]int{1, 1, 1}); !errors.Is(err, ErrNotUpdatable) {
		t.Fatalf("Points: %v, want ErrNotUpdatable", err)
	}
	// FetchCell is a read: on a read-only store it fetches the home
	// extent.
	st, err := s.FetchCell(ctx, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 1 {
		t.Fatalf("FetchCell on read-only store fetched %d blocks, want 1", st.Cells)
	}

	u, err := Open(v, MultiMap, []int{30, 8, 5}, Updatable(UpdateOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if !u.Updatable() {
		t.Fatal("Updatable store reports not updatable")
	}
	if _, err := u.Insert(ctx, []int{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreDeadlinePartialStats: the public contract of a query that
// cannot finish in time — partial Stats, the context's error, and the
// DeadlineExceeded counter.
func TestStoreDeadlinePartialStats(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	s, err := Open(v, MultiMap, []int{40, 12, 8}, WithChunkCells(64))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	st, err := s.RangeQuery(ctx, []int{0, 0, 0}, []int{40, 12, 8})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if st.Cells != 0 || st.TotalMs != 0 {
		t.Fatalf("expired query charged I/O: %+v", st)
	}
	if st.DeadlineExceeded == 0 {
		t.Fatal("DeadlineExceeded counter missing from partial stats")
	}
	// And with a live context the same query completes normally.
	st, err = s.RangeQuery(context.Background(), []int{0, 0, 0}, []int{40, 12, 8})
	if err != nil || st.Cells != 40*12*8 {
		t.Fatalf("full query after expired one: %+v %v", st, err)
	}
}
