package multimap

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/query"
)

// UpdatableStore adds the paper's online-update support (§4.6) on top
// of a mapped dataset: cells are loaded at a tunable fill factor,
// inserts that overflow a cell go to overflow pages, and underflowing
// chains are reorganized.
type UpdatableStore struct {
	*Store
	cells *core.CellStore
}

// UpdateOptions tunes §4.6 behaviour.
type UpdateOptions struct {
	// PointsPerBlock is the cell capacity in points (rows). Default 64.
	PointsPerBlock int
	// FillFactor in (0,1] reserves insert headroom at load time.
	// Default 0.75.
	FillFactor float64
	// ReclaimBelow in [0,1) triggers reorganization when a chain's
	// occupancy drops under it. Default 0.25.
	ReclaimBelow float64
	// OverflowBlocks reserves this many blocks for overflow pages at
	// the end of the dataset's disk. Default 1/8 of the dataset size.
	OverflowBlocks int64
}

func (o UpdateOptions) withDefaults(datasetBlocks int64) UpdateOptions {
	if o.PointsPerBlock == 0 {
		o.PointsPerBlock = 64
	}
	if o.FillFactor == 0 {
		o.FillFactor = 0.75
	}
	if o.ReclaimBelow == 0 {
		o.ReclaimBelow = 0.25
	}
	if o.OverflowBlocks == 0 {
		o.OverflowBlocks = datasetBlocks/8 + 1
	}
	return o
}

// NewUpdatableStore maps the dataset and attaches update bookkeeping.
func NewUpdatableStore(vol *Volume, kind Mapping, dims []int, opts UpdateOptions) (*UpdatableStore, error) {
	s, err := NewStore(vol, kind, dims)
	if err != nil {
		return nil, err
	}
	blocks := int64(1)
	for _, d := range dims {
		blocks *= int64(d)
	}
	opts = opts.withDefaults(blocks)
	// Overflow extent at the tail of disk 0's segment.
	overflowStart := vol.v.DiskStart(0) + vol.v.DiskBlocks(0) - opts.OverflowBlocks
	if overflowStart < 0 {
		return nil, fmt.Errorf("multimap: overflow extent larger than the disk")
	}
	cells, err := core.NewCellStore(s.m.CellVLBN, opts.PointsPerBlock,
		opts.FillFactor, opts.ReclaimBelow, overflowStart, opts.OverflowBlocks)
	if err != nil {
		return nil, err
	}
	return &UpdatableStore{Store: s, cells: cells}, nil
}

// LoadCell bulk-loads n points into a cell at the configured fill
// factor.
func (u *UpdatableStore) LoadCell(cell []int, n int) error { return u.cells.LoadCell(cell, n) }

// Insert adds one point to a cell, overflowing if the home block is
// full.
func (u *UpdatableStore) Insert(cell []int) error { return u.cells.Insert(cell) }

// Delete removes one point from a cell, reorganizing underflowing
// chains.
func (u *UpdatableStore) Delete(cell []int) error { return u.cells.Delete(cell) }

// Points returns a cell's live point count.
func (u *UpdatableStore) Points(cell []int) (int, error) { return u.cells.Points(cell) }

// ChainLen returns the number of blocks backing a cell (1 = no
// overflow).
func (u *UpdatableStore) ChainLen(cell []int) (int, error) { return u.cells.ChainLen(cell) }

// Reorganizations counts chain compactions so far.
func (u *UpdatableStore) Reorganizations() int { return u.cells.Reorganizations() }

// FetchCell reads a cell including its overflow chain and returns the
// simulated I/O statistics — the §4.6 cost of an overflowed cell.
func (u *UpdatableStore) FetchCell(cell []int) (Stats, error) {
	reqs, err := u.cells.ReadRequests(cell)
	if err != nil {
		return Stats{}, err
	}
	return u.runStatic(reqs, query.PolicyFor(u.Mapping() == MultiMap))
}
