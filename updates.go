package multimap

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

// UpdatableStore adds the paper's online-update support (§4.6) on top
// of a mapped dataset: cells are loaded at a tunable fill factor,
// inserts that overflow a cell go to overflow pages, and underflowing
// chains are reorganized.
//
// Updates are first-class write operations on the volume's query
// service: every Insert/Delete/LoadCell submits the blocks it dirties
// as a write op through a session, and the service loop invalidates
// any cached extents over those blocks before the write's simulated
// I/O cost is charged. A later FetchCell therefore always pays the
// real (post-update) disk cost, with or without the extent cache, and
// the store is safe for concurrent sessions mixing updates with
// queries.
type UpdatableStore struct {
	*Store
	cells *core.CellStore
	upd   *UpdateSession // default update session behind the method-set API (distinct from the embedded Store's def read session)
}

// UpdateOptions tunes §4.6 behaviour. The fractional fields use
// pointers so an explicit zero survives: nil selects the default,
// while &0.0 (see Frac) means exactly zero.
type UpdateOptions struct {
	// PointsPerBlock is the cell capacity in points (rows). 0 selects
	// the default 64.
	PointsPerBlock int
	// FillFactor reserves insert headroom at load time. nil selects the
	// default 0.75; explicit values must lie in (0,1].
	FillFactor *float64
	// ReclaimBelow triggers reorganization when a chain's occupancy
	// drops under it. nil selects the default 0.25; Frac(0) disables
	// reclamation entirely; explicit values must lie in [0,1).
	ReclaimBelow *float64
	// OverflowBlocks reserves this many blocks for overflow pages at
	// the end of the dataset's disk. 0 selects the default 1/8 of the
	// dataset size. The extent must not collide with the mapped cells;
	// NewUpdatableStore validates this.
	OverflowBlocks int64
}

// Frac returns a pointer to v for UpdateOptions' optional fractional
// fields, letting an explicit zero be distinguished from "unset".
func Frac(v float64) *float64 { return &v }

func (o UpdateOptions) withDefaults(datasetBlocks int64) (UpdateOptions, error) {
	if o.PointsPerBlock < 0 {
		return o, fmt.Errorf("multimap: PointsPerBlock %d must be non-negative", o.PointsPerBlock)
	}
	if o.PointsPerBlock == 0 {
		o.PointsPerBlock = 64
	}
	if o.FillFactor == nil {
		o.FillFactor = Frac(0.75)
	} else if f := *o.FillFactor; f <= 0 || f > 1 {
		return o, fmt.Errorf("multimap: FillFactor %v outside (0,1]", f)
	}
	if o.ReclaimBelow == nil {
		o.ReclaimBelow = Frac(0.25)
	} else if r := *o.ReclaimBelow; r < 0 || r >= 1 {
		return o, fmt.Errorf("multimap: ReclaimBelow %v outside [0,1)", r)
	}
	if o.OverflowBlocks < 0 {
		return o, fmt.Errorf("multimap: OverflowBlocks %d must be non-negative", o.OverflowBlocks)
	}
	if o.OverflowBlocks == 0 {
		o.OverflowBlocks = datasetBlocks/8 + 1
	}
	return o, nil
}

// NewUpdatableStore maps the dataset and attaches update bookkeeping.
// The overflow extent is carved from the tail of disk 0's segment; the
// constructor fails if it would overlap the dataset's own cells there.
// The optional StoreOptions tune the underlying Store exactly as
// NewStore does (cache, policy, chunking, inflight).
func NewUpdatableStore(vol *Volume, kind Mapping, dims []int, opts UpdateOptions, sopts ...StoreOptions) (*UpdatableStore, error) {
	s, err := NewStore(vol, kind, dims, sopts...)
	if err != nil {
		return nil, err
	}
	blocks := int64(1)
	for _, d := range dims {
		blocks *= int64(d)
	}
	opts, err = opts.withDefaults(blocks)
	if err != nil {
		return nil, err
	}
	// Overflow extent at the tail of disk 0's segment.
	disk0End := vol.v.DiskStart(0) + vol.v.DiskBlocks(0)
	overflowStart := disk0End - opts.OverflowBlocks
	if overflowStart < vol.v.DiskStart(0) {
		return nil, fmt.Errorf("multimap: overflow extent larger than the disk")
	}
	if sp, ok := s.m.(mapping.Spanned); ok {
		if lo, hi := sp.SpanVLBN(); lo < disk0End && hi > overflowStart {
			return nil, fmt.Errorf(
				"multimap: overflow extent [%d,%d) collides with dataset cells [%d,%d) on disk 0; shrink OverflowBlocks (%d)",
				overflowStart, disk0End, lo, hi, opts.OverflowBlocks)
		}
	}
	cells, err := core.NewCellStore(s.m.CellVLBN, opts.PointsPerBlock,
		*opts.FillFactor, *opts.ReclaimBelow, overflowStart, opts.OverflowBlocks)
	if err != nil {
		return nil, err
	}
	u := &UpdatableStore{Store: s, cells: cells}
	u.upd = u.Begin()
	return u, nil
}

// Begin opens an update session: a query session extended with the
// write-path operations. Sessions are safe for concurrent use with
// each other; each operation's Stats are attributed to its session.
func (u *UpdatableStore) Begin() *UpdateSession {
	return &UpdateSession{u: u, Session: u.Store.Begin()}
}

// LoadCell bulk-loads n points into a cell at the configured fill
// factor, charging the load's write I/O to the default session.
func (u *UpdatableStore) LoadCell(cell []int, n int) error {
	_, err := u.upd.LoadCell(cell, n)
	return err
}

// Insert adds one point to a cell through the default session,
// overflowing if the home block is full.
func (u *UpdatableStore) Insert(cell []int) error {
	_, err := u.upd.Insert(cell)
	return err
}

// Delete removes one point from a cell through the default session,
// reorganizing underflowing chains.
func (u *UpdatableStore) Delete(cell []int) error {
	_, err := u.upd.Delete(cell)
	return err
}

// Points returns a cell's live point count.
func (u *UpdatableStore) Points(cell []int) (int, error) { return u.cells.Points(cell) }

// ChainLen returns the number of blocks backing a cell (1 = no
// overflow).
func (u *UpdatableStore) ChainLen(cell []int) (int, error) { return u.cells.ChainLen(cell) }

// Reorganizations counts chain compactions so far.
func (u *UpdatableStore) Reorganizations() int { return u.cells.Reorganizations() }

// FetchCell reads a cell including its overflow chain through the
// default session and returns the simulated I/O statistics — the §4.6
// cost of an overflowed cell.
func (u *UpdatableStore) FetchCell(cell []int) (Stats, error) { return u.upd.FetchCell(cell) }

// UpdateSession is one client's handle for mixing queries and updates
// concurrently with other sessions on the same volume. Reads ride the
// embedded query Session; updates go through the same engine session
// as write ops, so the service loop serializes them against all
// in-flight reads and keeps the extent cache coherent.
type UpdateSession struct {
	u *UpdatableStore
	*Session
}

// LoadCell bulk-loads n points into a cell and returns the write-path
// Stats (blocks written in Stats.Writes). Even when the load fails
// partway (overflow extent exhausted), the blocks it already dirtied
// are still submitted as a write op, so their cached extents are
// invalidated before the error is reported.
func (q *UpdateSession) LoadCell(cell []int, n int) (Stats, error) {
	reqs, err := q.u.cells.LoadCell(cell, n)
	if len(reqs) > 0 {
		st, werr := q.write(reqs)
		if err == nil && werr == nil {
			return st, nil
		}
		if err == nil {
			err = werr
		}
	}
	return Stats{}, err
}

// Insert adds one point to a cell, overflowing if the home block is
// full, and returns the write-path Stats.
func (q *UpdateSession) Insert(cell []int) (Stats, error) {
	reqs, err := q.u.cells.Insert(cell)
	if err != nil {
		return Stats{}, err
	}
	return q.write(reqs)
}

// Delete removes one point from a cell, reorganizing underflowing
// chains, and returns the write-path Stats (a reorganization rewrites
// the whole chain, which shows in Stats.Writes).
func (q *UpdateSession) Delete(cell []int) (Stats, error) {
	reqs, err := q.u.cells.Delete(cell)
	if err != nil {
		return Stats{}, err
	}
	return q.write(reqs)
}

// FetchCell reads a cell including its overflow chain and returns the
// simulated I/O statistics.
func (q *UpdateSession) FetchCell(cell []int) (Stats, error) {
	reqs, err := q.u.cells.ReadRequests(cell)
	if err != nil {
		return Stats{}, err
	}
	return q.es.RunPlan(engine.Static(reqs, query.PolicyFor(q.u.Mapping() == MultiMap)), engine.Options{})
}

// write submits one mutation's dirtied extents as a service write op.
func (q *UpdateSession) write(reqs []lvm.Request) (Stats, error) {
	return q.es.Write(reqs, query.PolicyFor(q.u.Mapping() == MultiMap))
}
