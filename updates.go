package multimap

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

// growOnExhaustion is the auto-grow retry gate: true exactly when err
// is an overflow-pool exhaustion, the store has a pool auto-grow hook
// (a tenant under WithAutoGrow), and the grow succeeded — i.e. the
// failed update is worth retrying against the fresh capacity. Callers
// may loop (a bulk load can outsize a single growth increment); the
// loop still terminates on a genuinely full pool because the hook
// itself errors once the drive has no free extent left, which leaves
// the original exhaustion error to surface.
func (s *Store) growOnExhaustion(err error) bool {
	if s.autoGrow == nil || !errors.Is(err, core.ErrOverflowExhausted) {
		return false
	}
	return s.autoGrow() == nil
}

// This file is the update capability of the unified Store (§4.6),
// enabled by the Updatable open option: cells are loaded at a tunable
// fill factor, inserts that overflow a cell go to overflow pages, and
// underflowing chains are reorganized.
//
// Updates are first-class write operations on the owning shard's query
// service: every Insert/Delete/LoadCell routes its cell to the shard
// holding it, submits the blocks it dirties as a write op through that
// shard's member session, and the shard's service loop invalidates any
// cached extents over those blocks before the write's simulated I/O
// cost is charged. A later FetchCell therefore always pays the real
// (post-update) disk cost, with or without the extent cache, and the
// store is safe for concurrent sessions mixing updates with queries.
//
// Each shard keeps its own overflow page pool, carved round-robin from
// the tails of its volume's member disks, so overflow chains spread
// across every disk instead of piling onto disk 0.

// UpdateOptions tunes §4.6 behaviour; pass it to the Updatable open
// option. The fractional fields use pointers so an explicit zero
// survives: nil selects the default, while &0.0 (see Frac) means
// exactly zero.
type UpdateOptions struct {
	// PointsPerBlock is the cell capacity in points (rows). 0 selects
	// the default 64.
	PointsPerBlock int
	// FillFactor reserves insert headroom at load time. nil selects the
	// default 0.75; explicit values must lie in (0,1].
	FillFactor *float64
	// ReclaimBelow triggers reorganization when a chain's occupancy
	// drops under it. nil selects the default 0.25; Frac(0) disables
	// reclamation entirely; explicit values must lie in [0,1).
	ReclaimBelow *float64
	// OverflowBlocks reserves this many blocks for overflow pages per
	// shard, spread round-robin across the tails of the shard volume's
	// member disks. 0 selects the default 1/8 of the shard's dataset
	// size. No per-disk extent may collide with the cells mapped onto
	// that disk; Open validates this.
	OverflowBlocks int64
}

// Frac returns a pointer to v for UpdateOptions' optional fractional
// fields, letting an explicit zero be distinguished from "unset".
func Frac(v float64) *float64 { return &v }

func (o UpdateOptions) withDefaults(datasetBlocks int64) (UpdateOptions, error) {
	if o.PointsPerBlock < 0 {
		return o, fmt.Errorf("multimap: PointsPerBlock %d must be non-negative", o.PointsPerBlock)
	}
	if o.PointsPerBlock == 0 {
		o.PointsPerBlock = 64
	}
	if o.FillFactor == nil {
		o.FillFactor = Frac(0.75)
	} else if f := *o.FillFactor; f <= 0 || f > 1 {
		return o, fmt.Errorf("multimap: FillFactor %v outside (0,1]", f)
	}
	if o.ReclaimBelow == nil {
		o.ReclaimBelow = Frac(0.25)
	} else if r := *o.ReclaimBelow; r < 0 || r >= 1 {
		return o, fmt.Errorf("multimap: ReclaimBelow %v outside [0,1)", r)
	}
	if o.OverflowBlocks < 0 {
		return o, fmt.Errorf("multimap: OverflowBlocks %d must be non-negative", o.OverflowBlocks)
	}
	if o.OverflowBlocks == 0 {
		o.OverflowBlocks = datasetBlocks/8 + 1
	}
	return o, nil
}

// overflowExtents carves one tail extent per member disk of a shard's
// volume, splitting total as evenly as possible, and validates each
// extent against the cells the mapping placed on that disk (the
// per-disk refinement of the SpanVLBN collision check — under a
// declustered dataset the global span straddles every disk and would
// falsely reject any tail extent).
func overflowExtents(vol *lvm.Volume, m mapping.Mapper, total int64) ([]lvm.Request, error) {
	nd := int64(vol.NumDisks())
	per, rem := total/nd, total%nd
	var out []lvm.Request
	for d := 0; d < int(nd); d++ {
		q := per
		if int64(d) < rem {
			q++
		}
		if q == 0 {
			continue
		}
		end := vol.DiskStart(d) + vol.DiskBlocks(d)
		start := end - q
		if start < vol.DiskStart(d) {
			return nil, fmt.Errorf("multimap: overflow extent [%d,+%d) larger than disk %d", start, q, d)
		}
		lo, hi := int64(0), int64(0)
		if ds, ok := m.(mapping.DiskSpanned); ok {
			lo, hi = ds.SpanOnDisk(d)
		} else if sp, ok := m.(mapping.Spanned); ok {
			// Conservative fallback: clip the global span to the disk.
			lo, hi = sp.SpanVLBN()
			if lo < vol.DiskStart(d) {
				lo = vol.DiskStart(d)
			}
			if hi > end {
				hi = end
			}
		}
		if lo < hi && lo < end && hi > start {
			return nil, fmt.Errorf(
				"multimap: overflow extent [%d,%d) collides with dataset cells [%d,%d) on disk %d; shrink OverflowBlocks (%d)",
				start, end, lo, hi, d, total)
		}
		out = append(out, lvm.Request{VLBN: start, Count: int(q)})
	}
	return out, nil
}

// initUpdatable attaches update bookkeeping to a freshly built store
// (the Updatable open option). Every shard gets its own overflow pool
// carved from the tails of its volume's member disks; it fails if any
// per-disk extent would overlap the cells mapped onto that disk.
func (s *Store) initUpdatable(opts UpdateOptions) error {
	s.cells = make([]*core.CellStore, s.NumShards())
	for si := 0; si < s.NumShards(); si++ {
		member := s.grp.Member(si)
		blocks := int64(1)
		for _, d := range s.grp.Router().LocalDims(si) {
			blocks *= int64(d)
		}
		o, err := opts.withDefaults(blocks)
		if err != nil {
			return err
		}
		extents, err := overflowExtents(member.Vol, member.Map, o.OverflowBlocks)
		if err != nil {
			if si > 0 {
				err = fmt.Errorf("shard %d: %w", si, err)
			}
			return err
		}
		s.cells[si], err = core.NewCellStore(member.Map.CellVLBN, o.PointsPerBlock,
			*o.FillFactor, *o.ReclaimBelow, extents)
		if err != nil {
			return err
		}
	}
	return nil
}

// Updatable reports whether the store was opened with the Updatable
// option, i.e. whether its sessions serve Insert/Delete/LoadCell.
func (s *Store) Updatable() bool { return s.cells != nil }

// route resolves a global cell to its owning shard: the shard index,
// the shard-local coordinates, and the shard's chain tracker. It fails
// with ErrNotUpdatable on a store opened without Updatable.
func (s *Store) route(cell []int) (si int, local []int, cs *core.CellStore, err error) {
	if s.cells == nil {
		return 0, nil, nil, ErrNotUpdatable
	}
	si, err = s.grp.Router().ShardOf(cell)
	if err != nil {
		return 0, nil, nil, err
	}
	return si, s.grp.Router().Localize(si, cell), s.cells[si], nil
}

// Points returns a cell's live point count.
func (s *Store) Points(cell []int) (int, error) {
	_, local, cs, err := s.route(cell)
	if err != nil {
		return 0, err
	}
	return cs.Points(local)
}

// ChainLen returns the number of blocks backing a cell (1 = no
// overflow).
func (s *Store) ChainLen(cell []int) (int, error) {
	_, local, cs, err := s.route(cell)
	if err != nil {
		return 0, err
	}
	return cs.ChainLen(local)
}

// Reorganizations counts chain compactions so far, across all shards
// (0 on a store opened without Updatable).
func (s *Store) Reorganizations() int {
	n := 0
	for _, cs := range s.cells {
		n += cs.Reorganizations()
	}
	return n
}

// LoadCell bulk-loads n points into a cell at the configured fill
// factor through the store's default session, returning the write-path
// Stats (blocks written in Stats.Writes). Even when the load fails
// partway (overflow pool exhausted), the blocks it already dirtied are
// still submitted as a write op, so their cached extents are
// invalidated before the error is reported.
func (s *Store) LoadCell(ctx context.Context, cell []int, n int) (Stats, error) {
	return s.def.LoadCell(ctx, cell, n)
}

// Insert adds one point to a cell through the default session,
// overflowing if the home block is full.
func (s *Store) Insert(ctx context.Context, cell []int) (Stats, error) {
	return s.def.Insert(ctx, cell)
}

// Delete removes one point from a cell through the default session,
// reorganizing underflowing chains.
func (s *Store) Delete(ctx context.Context, cell []int) (Stats, error) {
	return s.def.Delete(ctx, cell)
}

// FetchCell reads a cell including its overflow chain through the
// default session and returns the simulated I/O statistics — the §4.6
// cost of an overflowed cell.
func (s *Store) FetchCell(ctx context.Context, cell []int) (Stats, error) {
	return s.def.FetchCell(ctx, cell)
}

// LoadCell bulk-loads n points into a cell through this session and
// returns the write-path Stats (blocks written in Stats.Writes). Even
// when the load fails partway (overflow pool exhausted), the blocks it
// already dirtied are still submitted as a write op, so their cached
// extents are invalidated before the error is reported.
func (q *Session) LoadCell(ctx context.Context, cell []int, n int) (Stats, error) {
	ctx, err := q.checkMutate(ctx)
	if err != nil {
		return Stats{}, err
	}
	si, local, cs, err := q.s.route(cell)
	if err != nil {
		return Stats{}, err
	}
	var before int
	if q.s.autoGrow != nil {
		before, _ = cs.Points(local)
	}
	reqs, err := cs.LoadCell(local, n)
	for err != nil && q.s.growOnExhaustion(err) {
		// Each grow hands fresh overflow extents to every shard's pool;
		// the retry resumes where the failed load stopped (the partial
		// load kept its points, so only the remainder is loaded) and the
		// dirtied extents of every round go out as one write. A load
		// larger than one growth increment just loops; a full drive
		// stops the loop through the failing grow hook.
		now, _ := cs.Points(local)
		var more []lvm.Request
		more, err = cs.LoadCell(local, n-(now-before))
		reqs = append(reqs, more...)
	}
	if len(reqs) > 0 {
		st, werr := q.write(ctx, si, reqs)
		if err == nil && werr == nil {
			return st, nil
		}
		if err == nil {
			err = werr
		}
	}
	return Stats{}, err
}

// Insert adds one point to a cell, overflowing if the home block is
// full, and returns the write-path Stats.
func (q *Session) Insert(ctx context.Context, cell []int) (Stats, error) {
	ctx, err := q.checkMutate(ctx)
	if err != nil {
		return Stats{}, err
	}
	si, local, cs, err := q.s.route(cell)
	if err != nil {
		return Stats{}, err
	}
	reqs, err := cs.Insert(local)
	for err != nil && q.s.growOnExhaustion(err) {
		// A failed Insert mutated nothing, so the retry is the whole op.
		reqs, err = cs.Insert(local)
	}
	if err != nil {
		return Stats{}, err
	}
	return q.write(ctx, si, reqs)
}

// Delete removes one point from a cell, reorganizing underflowing
// chains, and returns the write-path Stats (a reorganization rewrites
// the whole chain, which shows in Stats.Writes).
func (q *Session) Delete(ctx context.Context, cell []int) (Stats, error) {
	ctx, err := q.checkMutate(ctx)
	if err != nil {
		return Stats{}, err
	}
	si, local, cs, err := q.s.route(cell)
	if err != nil {
		return Stats{}, err
	}
	reqs, err := cs.Delete(local)
	if err != nil {
		return Stats{}, err
	}
	return q.write(ctx, si, reqs)
}

// FetchCell reads one cell from the owning shard and returns the
// simulated I/O statistics. On an updatable store the read covers the
// cell's whole overflow chain (the §4.6 cost of an overflowed cell);
// on a read-only store it is the cell's home extent.
func (q *Session) FetchCell(ctx context.Context, cell []int) (Stats, error) {
	ctx, err := q.check(ctx)
	if err != nil {
		return Stats{}, err
	}
	var si int
	var reqs []lvm.Request
	if q.s.cells != nil {
		var local []int
		var cs *core.CellStore
		si, local, cs, err = q.s.route(cell)
		if err != nil {
			return Stats{}, err
		}
		reqs, err = cs.ReadRequests(local)
		if err != nil {
			return Stats{}, err
		}
	} else {
		var vlbn int64
		si, vlbn, err = q.s.grp.CellVLBN(cell)
		if err != nil {
			return Stats{}, err
		}
		reqs = []lvm.Request{{VLBN: vlbn, Count: q.s.CellBlocks()}}
	}
	start := time.Now()
	st, err := q.ss.Member(si).RunPlan(ctx,
		engine.Static(reqs, query.PolicyFor(q.s.Mapping() == MultiMap)), engine.Options{})
	if err == nil {
		q.s.recordQueryLatency(start)
	}
	return st, err
}

// write submits one mutation's dirtied extents as a write op on the
// owning shard's member session. The cell store coalesces dirty blocks
// by plain VLBN adjacency; the service's write path splits any extent
// that crosses a disk-segment boundary (possible when an overflow
// extent ends exactly at one disk's tail), so nothing more is needed
// here.
func (q *Session) write(ctx context.Context, si int, reqs []lvm.Request) (Stats, error) {
	return q.ss.Member(si).Write(ctx, reqs, query.PolicyFor(q.s.Mapping() == MultiMap))
}
