package multimap

// One benchmark per paper artifact (Fig. 1, 6, 7, 8) plus ablations for
// the design choices DESIGN.md calls out. Benchmarks run the figure
// drivers at a reduced scale so `go test -bench=.` completes in
// minutes; `cmd/mmbench` runs them at paper scale.
//
// Reported custom metrics carry the figure's headline quantity
// (ms/cell, speedup) so the bench output doubles as a results table.

import (
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/experiments"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

// benchCfg is the shared reduced-scale configuration.
func benchCfg() experiments.Config {
	return experiments.Config{
		Disks: []*disk.Geometry{disk.AtlasTenKIII(), disk.CheetahThirtySixES()},
		Scale: 0.5,
		Runs:  5,
		Seed:  1,
	}
}

func BenchmarkFig1aSeekProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1aSeekProfile(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1bAdjacency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1bAdjacency(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6aBeams(b *testing.B) {
	var res experiments.Fig6aResult
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = experiments.Fig6aBeams(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for diskName, byKind := range res {
		mm := byKind["MultiMap"]
		b.ReportMetric(mm[1], "ms/cell-dim1-multimap-"+shortName(diskName))
		break
	}
}

func BenchmarkFig6bRanges(b *testing.B) {
	cfg := benchCfg()
	cfg.Disks = cfg.Disks[:1]
	cfg.Runs = 2
	var res experiments.Fig6bResult
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = experiments.Fig6bRanges(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, byKind := range res {
		best := 0.0
		for _, sp := range byKind["MultiMap"] {
			if sp > best {
				best = sp
			}
		}
		b.ReportMetric(best, "max-speedup-multimap")
		break
	}
}

func BenchmarkFig7aQuakeBeams(b *testing.B) {
	cfg := benchCfg()
	cfg.Disks = cfg.Disks[:1]
	var res experiments.Fig7aResult
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = experiments.Fig7aQuakeBeams(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, byKind := range res {
		b.ReportMetric(byKind["MultiMap"][2], "ms/cell-z-multimap")
		break
	}
}

func BenchmarkFig7bQuakeRanges(b *testing.B) {
	cfg := benchCfg()
	cfg.Disks = cfg.Disks[:1]
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig7bQuakeRanges(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8OLAP(b *testing.B) {
	cfg := benchCfg()
	cfg.Disks = cfg.Disks[:1]
	cfg.Runs = 2
	var res experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = experiments.Fig8OLAP(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, byKind := range res {
		b.ReportMetric(byKind["MultiMap"]["Q5"], "ms/cell-q5-multimap")
		break
	}
}

// BenchmarkBurstTraffic runs the closed-loop QoS-class workload with
// write-back group commit on, reporting the interactive class's
// simulated latency and the coalescing the dirty buffer achieved.
func BenchmarkBurstTraffic(b *testing.B) {
	cfg := benchCfg()
	cfg.Disks = cfg.Disks[:1]
	cfg.Scale = 0.25
	cfg.Clients = 4
	cfg.Queries = 8
	cfg.CacheBlocks = 1 << 22
	cfg.WriteFraction = 0.3
	cfg.WriteBack = true
	var res *experiments.BurstResult
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = experiments.BurstTraffic(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Classes[0].MeanSimMs, "sim-ms/op-interactive")
	b.ReportMetric(float64(res.Coalesced), "coalesced-writes")
}

func shortName(disk string) string {
	if len(disk) > 6 {
		return disk[:6]
	}
	return disk
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationAdjacencyDepth sweeps the exported D: smaller D
// shrinks the basic cube's middle dimensions and pushes more steps to
// full cube jumps (Eq. 3 / §4.3).
func BenchmarkAblationAdjacencyDepth(b *testing.B) {
	dims := []int{130, 130, 130}
	for _, d := range []int{16, 64, 128} {
		b.Run(depthName(d), func(b *testing.B) {
			var per float64
			for i := 0; i < b.N; i++ {
				v, err := lvm.New(d, disk.AtlasTenKIII())
				if err != nil {
					b.Fatal(err)
				}
				m, err := mapping.New(mapping.MultiMap, v, dims, mapping.Options{DiskIdx: 0})
				if err != nil {
					b.Fatal(err)
				}
				e := query.NewExecutor(v, m)
				st, err := e.Beam(2, []int{10, 10, 0})
				if err != nil {
					b.Fatal(err)
				}
				per = st.MsPerCell()
			}
			b.ReportMetric(per, "ms/cell-dim2-beam")
		})
	}
}

func depthName(d int) string {
	switch d {
	case 16:
		return "D16"
	case 64:
		return "D64"
	default:
		return "D128"
	}
}

// BenchmarkAblationScheduler compares the disk's SPTF scheduler against
// naive FIFO on a MultiMap Dim1 beam — the mechanism §5.2 relies on.
func BenchmarkAblationScheduler(b *testing.B) {
	dims := []int{130, 130, 130}
	for _, policy := range []disk.SchedPolicy{disk.SchedFIFO, disk.SchedSPTF} {
		b.Run(policy.String(), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				v, err := lvm.New(0, disk.AtlasTenKIII())
				if err != nil {
					b.Fatal(err)
				}
				m, err := mapping.New(mapping.MultiMap, v, dims, mapping.Options{DiskIdx: 0})
				if err != nil {
					b.Fatal(err)
				}
				// Issue a shuffled Dim1 beam directly.
				var reqs []lvm.Request
				for x1 := 0; x1 < dims[1]; x1++ {
					vlbn, err := m.CellVLBN([]int{7, x1, 9})
					if err != nil {
						b.Fatal(err)
					}
					reqs = append(reqs, lvm.Request{VLBN: vlbn, Count: 1})
				}
				rand.New(rand.NewSource(3)).Shuffle(len(reqs), func(i, j int) {
					reqs[i], reqs[j] = reqs[j], reqs[i]
				})
				st, err := query.Execute(v, reqs, policy)
				if err != nil {
					b.Fatal(err)
				}
				ms = st.TotalMs / float64(st.Cells)
			}
			b.ReportMetric(ms, "ms/cell")
		})
	}
}

// BenchmarkAblationDeclustering measures elapsed time of a fixed slab
// fetch as drives are added (§4.4).
func BenchmarkAblationDeclustering(b *testing.B) {
	dims := []int{130, 130, 130}
	for _, n := range []int{1, 2, 4} {
		b.Run(diskCount(n), func(b *testing.B) {
			var elapsed float64
			for i := 0; i < b.N; i++ {
				geoms := make([]*disk.Geometry, n)
				for j := range geoms {
					geoms[j] = disk.AtlasTenKIII()
				}
				v, err := lvm.New(0, geoms...)
				if err != nil {
					b.Fatal(err)
				}
				m, err := mapping.New(mapping.MultiMap, v, dims, mapping.Options{DiskIdx: -1})
				if err != nil {
					b.Fatal(err)
				}
				e := query.NewExecutor(v, m)
				st, err := e.Range([]int{0, 0, 0}, []int{130, 130, 16})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = st.ElapsedMs
			}
			b.ReportMetric(elapsed, "elapsed-ms")
		})
	}
}

func diskCount(n int) string {
	switch n {
	case 1:
		return "1disk"
	case 2:
		return "2disks"
	default:
		return "4disks"
	}
}

// BenchmarkMappingConstruction measures the cost of building a MultiMap
// placement (chain materialization is one GetAdjacent call per track).
func BenchmarkMappingConstruction(b *testing.B) {
	v, err := lvm.New(0, disk.AtlasTenKIII())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.New(mapping.MultiMap, v, []int{130, 130, 130}, mapping.Options{DiskIdx: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCellLookup measures the mapping's cell-to-LBN hot path.
func BenchmarkCellLookup(b *testing.B) {
	v, err := lvm.New(0, disk.AtlasTenKIII())
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []mapping.Kind{mapping.Naive, mapping.ZOrder, mapping.Hilbert, mapping.MultiMap} {
		m, err := mapping.New(kind, v, []int{130, 130, 130}, mapping.Options{DiskIdx: 0})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			cell := make([]int, 3)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cell[0], cell[1], cell[2] = rng.Intn(130), rng.Intn(130), rng.Intn(130)
				if _, err := m.CellVLBN(cell); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
