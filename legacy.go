package multimap

import (
	"fmt"
	"time"
)

// This file is the deprecated pre-context API, kept one release as
// thin wrappers over Open and the functional options so existing code
// migrates incrementally. Every wrapper returns the unified Store; the
// operation methods themselves are context-first (see doc.go for the
// old-to-new migration table).

// StoreOptions tunes dataset placement and query execution.
//
// Deprecated: use Open with functional options (WithDiskIdx,
// WithCellBlocks, WithPolicy, WithChunkCells, WithCache,
// WithMaxInflight, WithShards, WithBatchWindow).
type StoreOptions struct {
	// DiskIdx pins the dataset to one member drive. -1 lets MultiMap
	// decluster basic cubes across drives (§4.4); linear mappings
	// treat -1 as drive 0.
	DiskIdx int
	// CellBlocks is the cell size in blocks (default 1).
	CellBlocks int
	// Policy forces the drive-internal scheduling policy for every
	// query ("fifo", "sptf", "elevator"); empty keeps each mapping's
	// preferred policy (§5.2).
	Policy string
	// PlanChunkCells bounds how many cells the streaming planner
	// expands per dispatch chunk; 0 plans each query as one chunk.
	PlanChunkCells int64
	// CacheBlocks sizes the volume's shared extent cache in blocks
	// (0 leaves the volume's current cache configuration unchanged).
	CacheBlocks int64
	// MaxInflight is how many plan chunks each of this store's sessions
	// keeps outstanding in the service at once (default 1).
	MaxInflight int
	// Shards spreads the dataset across this many independent shard
	// volumes (0 and 1 both mean a single shard).
	Shards int
	// BatchWindow is the time-based admission window of every shard
	// service this store uses (0 leaves the current window unchanged).
	BatchWindow time.Duration
}

// options translates the struct into the equivalent functional-option
// list, preserving the old validation (negative values fail Open).
func (o StoreOptions) options() []Option {
	return []Option{
		WithDiskIdx(o.DiskIdx),
		WithCellBlocks(o.CellBlocks),
		WithPolicy(o.Policy),
		WithChunkCells(o.PlanChunkCells),
		WithCache(o.CacheBlocks),
		WithMaxInflight(o.MaxInflight),
		WithShards(o.Shards),
		WithBatchWindow(o.BatchWindow),
	}
}

// NewStore maps an N-dimensional grid dataset onto the volume using
// the given placement.
//
// Deprecated: use Open, which takes functional options and returns the
// same Store.
func NewStore(vol *Volume, kind Mapping, dims []int, opts ...StoreOptions) (*Store, error) {
	var o StoreOptions
	if len(opts) > 1 {
		return nil, fmt.Errorf("multimap: at most one StoreOptions")
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	return Open(vol, kind, dims, o.options()...)
}

// UpdatableStore is the pre-unification name for a Store opened with
// the Updatable option; the two types are now one.
//
// Deprecated: use Store (opened via Open(..., Updatable(opts))).
type UpdatableStore = Store

// UpdateSession is the pre-unification name for a Session of an
// updatable store; the two types are now one.
//
// Deprecated: use Session.
type UpdateSession = Session

// NewUpdatableStore maps the dataset and attaches update bookkeeping.
//
// Deprecated: use Open with the Updatable option (plus any other
// functional options in place of StoreOptions).
func NewUpdatableStore(vol *Volume, kind Mapping, dims []int, opts UpdateOptions, sopts ...StoreOptions) (*UpdatableStore, error) {
	var so StoreOptions
	if len(sopts) > 1 {
		return nil, fmt.Errorf("multimap: at most one StoreOptions")
	}
	if len(sopts) == 1 {
		so = sopts[0]
	}
	return Open(vol, kind, dims, append(so.options(), Updatable(opts))...)
}
