package multimap

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mapping"
)

// poolPair returns a two-drive test pool: drive 0 for the long-lived
// serving tenant, drive 1 for churn.
func testPool(t *testing.T) *Pool {
	t.Helper()
	p, err := OpenPool(WithPoolDrives(MediumTestDisk, MediumTestDisk), WithPoolDepth(32))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tenantBResult captures the deterministic outputs of tenant B's
// lifecycle — the clone's query Stats must be bit-identical across
// pools with identical drive-1 history.
type tenantBResult struct {
	fetch, beam    Stats
	fills          int
	grownBy        int64
	cowFaultBlocks int64
}

// runTenantBLifecycle drives one full churn round on drive 1 of p:
// create an updatable tenant, fill one cell's chain until its overflow
// pool is exhausted, grow online, prove the blocked insert now fits,
// snapshot, clone, query the clone, dirty the parent past the snapshot
// (copy-on-write faults), then destroy parent, clone, and snapshot.
// The write-back triggers are set far out of reach so flushes happen
// only at deterministic points (read overlap, snapshot, close) and the
// whole sequence replays bit-identically on a fresh pool.
func runTenantBLifecycle(ctx context.Context, t *testing.T, p *Pool) *tenantBResult {
	t.Helper()
	res := &tenantBResult{}
	tb, err := p.Create(ctx, "tenant-b", MultiMap, []int{12, 6, 4},
		WithDrives(1),
		Updatable(UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1)}),
		WithWriteBack(1<<30, time.Hour))
	if err != nil {
		t.Fatalf("create tenant-b: %v", err)
	}
	cell := []int{1, 2, 3}
	const fillCap = 100000
	for ; res.fills < fillCap; res.fills++ {
		_, err := tb.Store().Insert(ctx, cell)
		if err == nil {
			continue
		}
		if !strings.Contains(err.Error(), "overflow extent exhausted") {
			t.Fatalf("fill insert %d: %v", res.fills, err)
		}
		break
	}
	if res.fills == fillCap {
		t.Fatal("overflow pool never exhausted")
	}
	before := tb.Blocks()
	if err := p.Grow(ctx, "tenant-b", before/2+1); err != nil {
		t.Fatalf("grow: %v", err)
	}
	res.grownBy = tb.Blocks() - before
	if res.grownBy <= 0 {
		t.Fatalf("grow added %d blocks", res.grownBy)
	}
	// The insert the exhausted pool refused lands in the grown capacity
	// without any re-open.
	if _, err := tb.Store().Insert(ctx, cell); err != nil {
		t.Fatalf("post-grow insert: %v", err)
	}
	snap, err := p.Snapshot(ctx, "tenant-b")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	tc, err := p.Clone(ctx, snap, "tenant-b-clone")
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	if res.fetch, err = tc.Store().FetchCell(ctx, cell); err != nil {
		t.Fatalf("clone fetch: %v", err)
	}
	if res.beam, err = tc.Store().Beam(ctx, 0, []int{0, 2, 3}); err != nil {
		t.Fatalf("clone beam: %v", err)
	}
	// Dirty the parent past the snapshot: each first write to a frozen
	// track must fault it into private storage before landing.
	for i := 0; i < 8; i++ {
		st, err := tb.Store().Insert(ctx, cell)
		if err != nil {
			t.Fatalf("post-snapshot insert %d: %v", i, err)
		}
		res.cowFaultBlocks += st.CowFaultBlocks
	}
	if err := tb.Store().Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := p.Destroy(ctx, "tenant-b-clone"); err != nil {
		t.Fatal(err)
	}
	if err := p.Destroy(ctx, "tenant-b"); err != nil {
		t.Fatal(err)
	}
	snap.Free()
	return res
}

// TestPoolLifecycleUnderLiveTraffic is the acceptance path: tenant B
// runs its whole lifecycle on drive 1 — created, grown past its
// initial overflow capacity, snapshotted, cloned, queried on the
// clone, dirtied copy-on-write, destroyed — while tenant A's QoS burst
// sessions keep serving on drive 0 with attribution sums intact. The
// clone's query Stats must equal, field for field, the same lifecycle
// replayed on a fresh pool with no concurrent tenant at all.
func TestPoolLifecycleUnderLiveTraffic(t *testing.T) {
	ctx := context.Background()
	p1 := testPool(t)
	ta, err := p1.Create(ctx, "tenant-a", MultiMap, []int{40, 12, 8},
		WithDrives(0),
		WithCache(4096),
		WithFairShare(256),
		WithQoSClass("interactive", 1, false),
		WithQoSClass("bulk", 4, false))
	if err != nil {
		t.Fatalf("create tenant-a: %v", err)
	}
	usage0 := p1.Usage()
	if len(usage0) != 2 {
		t.Fatalf("pool has %d drives, want 2", len(usage0))
	}

	// Tenant A's live burst: classed sessions that keep serving until
	// the churn finishes, at least one op each.
	const clients = 3
	sessions := make([]*Session, clients)
	for i := range sessions {
		class := "interactive"
		if i%2 == 1 {
			class = "bulk"
		}
		sessions[i] = ta.Store().BeginQoS(class)
	}
	done := make(chan struct{})
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for q := 0; ; q++ {
				if q > 0 {
					select {
					case <-done:
						return
					default:
					}
				}
				var err error
				if (i+q)%2 == 0 {
					_, err = sessions[i].Beam(ctx, 0, []int{0, (q * 5) % 12, q % 8})
				} else {
					_, err = sessions[i].RangeQuery(ctx, []int{(q * 3) % 20, 0, 0}, []int{(q*3)%20 + 10, 6, 4})
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}

	live := runTenantBLifecycle(ctx, t, p1)
	close(done)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant A client %d: %v", i, err)
		}
	}

	if live.cowFaultBlocks <= 0 {
		t.Fatalf("post-snapshot writes faulted %d blocks, want > 0", live.cowFaultBlocks)
	}
	// Destroy returned every drive-1 block: churn leaves no residue.
	usage1 := p1.Usage()
	if usage1[1].FreeBlocks != usage0[1].FreeBlocks {
		t.Fatalf("drive 1 leaked: %d free before churn, %d after", usage0[1].FreeBlocks, usage1[1].FreeBlocks)
	}
	// Drive 0 still carries exactly tenant A.
	if usage1[0].FreeBlocks != usage0[0].FreeBlocks {
		t.Fatalf("drive 0 changed under churn: %d free before, %d after", usage0[0].FreeBlocks, usage1[0].FreeBlocks)
	}

	// Attribution survived the concurrent churn: tenant A's session sums
	// equal its services' attributed totals (sessions observe per-chunk
	// elapsed, the loop per-batch, so ElapsedMs is excluded).
	var sum Stats
	for _, sess := range sessions {
		sum.Accumulate(sess.Stats())
	}
	var attr Stats
	for _, tot := range ta.Store().ShardServiceTotals() {
		attr.Accumulate(tot.Attributed)
	}
	if sum.Cells != attr.Cells || sum.Requests != attr.Requests || sum.Padding != attr.Padding ||
		sum.CacheHits != attr.CacheHits || sum.CacheMisses != attr.CacheMisses ||
		sum.CowFaultBlocks != attr.CowFaultBlocks {
		t.Fatalf("tenant A session sums %+v != attributed %+v", sum, attr)
	}
	if diff := math.Abs(sum.TotalMs - attr.TotalMs); diff > 1e-6*(1+sum.TotalMs) {
		t.Fatalf("attributed time drift %g: %v vs %v", diff, sum.TotalMs, attr.TotalMs)
	}
	if sum.Cells == 0 {
		t.Fatal("tenant A served nothing during the churn")
	}

	// Replay the identical lifecycle on a fresh pool with no tenant A:
	// drive 1's history is the same, so the clone's query Stats must be
	// bit-identical — the clone of a live pool reads exactly what a
	// fresh copy would.
	fresh := runTenantBLifecycle(ctx, t, testPool(t))
	if live.fills != fresh.fills {
		t.Fatalf("lifecycle diverged: %d fills under live traffic, %d fresh", live.fills, fresh.fills)
	}
	if live.fetch != fresh.fetch {
		t.Fatalf("clone fetch stats diverged:\nlive  %+v\nfresh %+v", live.fetch, fresh.fetch)
	}
	if live.beam != fresh.beam {
		t.Fatalf("clone beam stats diverged:\nlive  %+v\nfresh %+v", live.beam, fresh.beam)
	}

	if err := p1.Destroy(ctx, "tenant-a"); err != nil {
		t.Fatal(err)
	}
}

// TestGrownVolumeSpans covers the mapping collision checks across
// grown volumes: growing a tenant appends segments to its volume, and
// the mapper's span bookkeeping must ignore them — SpanVLBN and every
// pre-growth SpanOnDisk unchanged, every new segment's span empty —
// while the §4.6 overflow pool extends into the new extents.
func TestGrownVolumeSpans(t *testing.T) {
	ctx := context.Background()
	p := testPool(t)
	tb, err := p.Create(ctx, "b", MultiMap, []int{12, 6, 4},
		WithDrives(1),
		Updatable(UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1)}))
	if err != nil {
		t.Fatal(err)
	}
	st := tb.Store()
	m := st.grp.Member(0).Map
	sp, ok := m.(mapping.Spanned)
	if !ok {
		t.Fatalf("%T does not report SpanVLBN", m)
	}
	ds, ok := m.(mapping.DiskSpanned)
	if !ok {
		t.Fatalf("%T does not report SpanOnDisk", m)
	}
	lv := st.vol.v
	nd := lv.NumDisks()
	oldTotal := lv.TotalBlocks()
	preLo, preHi := sp.SpanVLBN()
	pre := make([][2]int64, nd)
	for i := range pre {
		lo, hi := ds.SpanOnDisk(i)
		pre[i] = [2]int64{lo, hi}
	}

	// Exhaust the initial overflow pool, then grow — twice, proving
	// spans stay stable across repeated growth.
	cell := []int{1, 2, 3}
	for round := 0; round < 2; round++ {
		fills := 0
		for ; fills < 100000; fills++ {
			if _, err := st.Insert(ctx, cell); err != nil {
				if !strings.Contains(err.Error(), "overflow extent exhausted") {
					t.Fatalf("round %d fill %d: %v", round, fills, err)
				}
				break
			}
		}
		if fills == 100000 {
			t.Fatalf("round %d: overflow pool never exhausted", round)
		}
		points, err := st.Points(cell)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Grow(ctx, "b", lv.TotalBlocks()/2+1); err != nil {
			t.Fatalf("round %d grow: %v", round, err)
		}
		// Every pre-growth overflow page is full, so this insert's page
		// can only come from an extent the growth just added.
		if _, err := st.Insert(ctx, cell); err != nil {
			t.Fatalf("round %d post-grow insert: %v", round, err)
		}
		if got, err := st.Points(cell); err != nil || got != points+1 {
			t.Fatalf("round %d: %d points after post-grow insert, want %d (err %v)", round, got, points+1, err)
		}
	}

	// Growth appended segments past the original capacity...
	if lv.NumDisks() <= nd {
		t.Fatalf("grow kept %d segments", lv.NumDisks())
	}
	for i := nd; i < lv.NumDisks(); i++ {
		if lv.DiskStart(i) < oldTotal {
			t.Fatalf("new segment %d starts at %d, inside the original %d blocks", i, lv.DiskStart(i), oldTotal)
		}
		// ...that the mapper never placed cells on: their spans are empty,
		// so a collision check against a new extent always passes.
		if lo, hi := ds.SpanOnDisk(i); lo != 0 || hi != 0 {
			t.Fatalf("new segment %d has span [%d,%d), want empty", i, lo, hi)
		}
	}
	// ...and left every pre-growth span byte-identical.
	if lo, hi := sp.SpanVLBN(); lo != preLo || hi != preHi {
		t.Fatalf("SpanVLBN moved: [%d,%d) -> [%d,%d)", preLo, preHi, lo, hi)
	}
	for i := range pre {
		if lo, hi := ds.SpanOnDisk(i); lo != pre[i][0] || hi != pre[i][1] {
			t.Fatalf("segment %d span moved: [%d,%d) -> [%d,%d)", i, pre[i][0], pre[i][1], lo, hi)
		}
	}

	if err := p.Destroy(ctx, "b"); err != nil {
		t.Fatal(err)
	}
}

// TestPoolAccounting covers the pool surface around the lifecycle:
// tenant listing, drive usage, duplicate and unknown names, explicit
// capacity, and snapshot misuse.
func TestPoolAccounting(t *testing.T) {
	ctx := context.Background()
	p := testPool(t)
	if got := p.Tenants(); len(got) != 0 {
		t.Fatalf("fresh pool lists tenants: %+v", got)
	}
	free0 := p.Usage()[0].FreeBlocks

	a, err := p.Create(ctx, "alpha", MultiMap, []int{12, 6, 4}, WithDrives(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Create(ctx, "alpha", MultiMap, []int{12, 6, 4}); err == nil {
		t.Error("duplicate tenant name accepted")
	}
	// Explicit capacity is honoured as a floor (pool extents are
	// track-granular) and drives thin accounting.
	b, err := p.Create(ctx, "beta", MultiMap, []int{12, 6, 4},
		WithDrives(1), WithCapacity(a.Blocks()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Blocks() < a.Blocks() {
		t.Fatalf("beta got %d blocks, want at least the requested %d", b.Blocks(), a.Blocks())
	}

	infos := p.Tenants()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("tenant listing wrong: %+v", infos)
	}
	if infos[0].Blocks != a.Blocks() || infos[0].Shards != 1 {
		t.Fatalf("alpha accounting wrong: %+v", infos[0])
	}
	if used := free0 - p.Usage()[0].FreeBlocks; used != a.Blocks() {
		t.Fatalf("drive 0 shows %d blocks used, want %d", used, a.Blocks())
	}

	if err := p.Grow(ctx, "nope", 128); err == nil {
		t.Error("grow of unknown tenant accepted")
	}
	if err := p.Grow(ctx, "alpha", 0); err == nil {
		t.Error("zero-block grow accepted")
	}
	if _, err := p.Snapshot(ctx, "nope"); err == nil {
		t.Error("snapshot of unknown tenant accepted")
	}
	if err := p.Destroy(ctx, "nope"); err == nil {
		t.Error("destroy of unknown tenant accepted")
	}

	// A freed snapshot cannot clone; a live one can, even after the
	// parent is gone.
	snap, err := p.Snapshot(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Destroy(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	c, err := p.Clone(ctx, snap, "gamma")
	if err != nil {
		t.Fatalf("clone from snapshot of destroyed parent: %v", err)
	}
	if _, err := c.Store().Beam(ctx, 0, []int{0, 2, 3}); err != nil {
		t.Fatalf("query on orphaned clone: %v", err)
	}
	snap.Free()
	snap.Free() // idempotent
	if _, err := p.Clone(ctx, snap, "delta"); err == nil {
		t.Error("clone from freed snapshot accepted")
	}
	if err := p.Destroy(ctx, "gamma"); err != nil {
		t.Fatal(err)
	}
	if err := p.Destroy(ctx, "beta"); err != nil {
		t.Fatal(err)
	}
	// Everything released: both drives fully free again.
	for i, u := range p.Usage() {
		if u.FreeBlocks != u.TotalBlocks {
			t.Fatalf("drive %d leaked: %d of %d blocks free", i, u.FreeBlocks, u.TotalBlocks)
		}
	}
}

// TestPoolAutoGrow proves WithAutoGrow absorbs overflow exhaustion
// online: a tenant filled past its overflow pool keeps inserting (the
// pool grows it mid-insert and retries), the growth is visible in the
// tenant's allocated blocks and in Usage's per-drive AutoGrownBlocks
// on exactly the tenant's drive, and a bulk LoadCell that exhausts the
// pool mid-load lands every requested point across the growth.
func TestPoolAutoGrow(t *testing.T) {
	ctx := context.Background()
	p, err := OpenPool(WithPoolDrives(MediumTestDisk, MediumTestDisk),
		WithPoolDepth(32), WithAutoGrow(128))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := p.Create(ctx, "tenant-b", MultiMap, []int{12, 6, 4},
		WithDrives(1),
		Updatable(UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1)}))
	if err != nil {
		t.Fatal(err)
	}
	cell := []int{1, 2, 3}
	initial := tb.Blocks()
	const fillCap = 100000
	fills := 0
	for ; fills < fillCap; fills++ {
		if _, err := tb.Store().Insert(ctx, cell); err != nil {
			t.Fatalf("insert %d surfaced despite auto-grow: %v", fills, err)
		}
		if tb.Blocks() > initial {
			break
		}
	}
	if tb.Blocks() <= initial {
		t.Fatalf("auto-grow never engaged in %d inserts", fills)
	}
	// Growth keeps the chain intact: every inserted point is live.
	n, err := tb.Store().Points(cell)
	if err != nil {
		t.Fatal(err)
	}
	if n != fills+1 {
		t.Fatalf("cell holds %d points after %d inserts", n, fills+1)
	}
	us := p.Usage()
	if us[1].AutoGrownBlocks <= 0 {
		t.Fatalf("drive 1 shows no auto-grown blocks: %+v", us)
	}
	if us[0].AutoGrownBlocks != 0 {
		t.Fatalf("auto-grow leaked onto drive 0: %+v", us)
	}
	if got := tb.Blocks() - initial; got != us[1].AutoGrownBlocks {
		t.Fatalf("tenant grew %d blocks but drive accounts %d", got, us[1].AutoGrownBlocks)
	}

	// Bulk load through another cell until the grown pool is exhausted
	// again mid-load: the retry must land exactly the requested points.
	cell2 := []int{2, 3, 1}
	grown := tb.Blocks()
	load := int(grown) // far more points than the current free overflow holds
	if _, err := tb.Store().LoadCell(ctx, cell2, load); err != nil {
		t.Fatalf("bulk load across auto-grow: %v", err)
	}
	if n, err = tb.Store().Points(cell2); err != nil || n != load {
		t.Fatalf("bulk-loaded cell holds %d points, want %d (err %v)", n, load, err)
	}
	if tb.Blocks() <= grown {
		t.Fatal("bulk load never triggered a second auto-grow")
	}

	// The increment must be positive.
	if _, err := OpenPool(WithAutoGrow(0)); err == nil {
		t.Fatal("WithAutoGrow(0) accepted")
	}
}
