// Table2D: the paper's §1 motivating example. A relational table is a
// 2-D structure; a linearized layout forces a choice between row-major
// and column-major order, making the other access pattern nearly
// random. MultiMap (the 2-D case, Fig. 2) keeps rows sequential and
// columns semi-sequential, so both scans are efficient — the
// Gorbatenko/Atropos two-dimensional-table result generalized.
package main

import (
	"context"
	"fmt"
	"log"

	multimap "repro"
)

func main() {
	// A table of 2000 rows x 64 column-blocks: think of each cell as a
	// block holding one column's values for a run of records.
	dims := []int{2000, 64}

	fmt.Println("2-D relational table, 2000 rows x 64 columns (one block per cell)")
	fmt.Printf("\n%-10s %16s %16s\n", "mapping", "row scan", "column scan")
	fmt.Printf("%-10s %16s %16s\n", "", "(ms/cell)", "(ms/cell)")

	for _, kind := range []multimap.Mapping{multimap.Naive, multimap.MultiMap} {
		vol, err := multimap.OpenVolume(multimap.AtlasTenKIII)
		if err != nil {
			log.Fatal(err)
		}
		store, err := multimap.Open(vol, kind, dims)
		if err != nil {
			log.Fatal(err)
		}
		// Row scan: all rows of one column (the table's major order).
		rowStats, err := store.Beam(context.Background(), 0, []int{0, 17})
		if err != nil {
			log.Fatal(err)
		}
		// Column scan: all columns of one row — the pattern that is
		// near-random under a linearized layout.
		colStats, err := store.Beam(context.Background(), 1, []int{999, 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %16.3f %16.3f\n", kind, rowStats.MsPerCell(), colStats.MsPerCell())
	}

	fmt.Println("\nNaive must pick one good order; MultiMap delivers streaming on")
	fmt.Println("rows and settle-time-only access on columns (§1, Fig. 2).")
}
