// Command deadline demonstrates the context-first Store API: deadlines
// as a first-class QoS signal.
//
// Part 1 issues one large range query under a context.WithTimeout far
// too short to finish it. The streaming planner stops between chunks,
// the service drops the query's queued chunks before admission (no
// simulated I/O is charged for work never issued), and the call
// returns the partial Stats of the chunks that WERE served alongside
// context.DeadlineExceeded — with Stats.DeadlineExceeded counting the
// dropped operations.
//
// Part 2 is the fairness demo: seven bulk sessions hammer the store
// while one QoS session issues queries under a per-query deadline.
// Without deadline-aware admission the QoS session's chunks coalesce
// into the bulk sessions' big admission batches and observe their
// elapsed time; with WithDeadlineAging the admission batcher serves
// deadline-carrying requests first, in their own batch, so the same
// session sees a small fraction of the latency at nearly identical
// aggregate throughput.
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	multimap "repro"
)

var dims = []int{130, 130, 130}

func main() {
	partial()
	fmt.Println()
	fairness()
}

// partial shows a cancelled query's partial-stats contract.
func partial() {
	vol, err := multimap.OpenVolume(multimap.AtlasTenKIII)
	if err != nil {
		panic(err)
	}
	defer vol.Close()
	store, err := multimap.Open(vol, multimap.MultiMap, dims,
		multimap.WithChunkCells(1024), multimap.WithMaxInflight(4))
	if err != nil {
		panic(err)
	}
	total := int64(dims[0]) * int64(dims[1]) * int64(dims[2])

	// A background bulk query keeps the service busy, so some of the
	// deadline query's chunks are still queued when its deadline passes
	// — those are dropped before admission (the service-side counters).
	bulk := store.Begin()
	bulkDone := make(chan struct{})
	go func() {
		defer close(bulkDone)
		if _, err := bulk.RangeQuery(context.Background(), []int{0, 0, 0}, dims); err != nil {
			panic(err)
		}
	}()
	time.Sleep(time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	st, err := store.RangeQuery(ctx, []int{0, 0, 0}, dims)
	<-bulkDone
	fmt.Printf("full-box range query (%d cells) under a 5ms deadline:\n", total)
	fmt.Printf("  err               = %v (DeadlineExceeded: %v)\n",
		err, errors.Is(err, context.DeadlineExceeded))
	fmt.Printf("  partial cells     = %d of %d (%.1f%%)\n",
		st.Cells, total, 100*float64(st.Cells)/float64(total))
	fmt.Printf("  simulated I/O     = %.1f ms charged for the issued chunks only\n", st.TotalMs)
	fmt.Printf("  dropped ops       = %d (Stats.DeadlineExceeded)\n", st.DeadlineExceeded)
	// Drops land wherever the deadline catches the work: at the
	// submitter before an op is queued (counted only in the query's
	// Stats, as here) or at the service before admission (also counted
	// in ServiceTotals.Cancelled/DeadlineExceeded).
	tot := vol.ServiceTotals()
	fmt.Printf("  service-side drops = cancelled %d, deadline-exceeded %d\n",
		tot.Cancelled, tot.DeadlineExceeded)
}

// fairness compares the QoS session's observed latency with and
// without deadline-aware admission.
func fairness() {
	const (
		bulkClients   = 7
		bulkQueries   = 12
		qosQueries    = 12
		qosDeadline   = 100 * time.Millisecond
		agedAdmission = 2 * time.Millisecond
	)
	fmt.Printf("fairness: %d bulk sessions vs one session under a %v per-query deadline\n",
		bulkClients, qosDeadline)

	run := func(aging time.Duration) (meanMs float64, expired int) {
		vol, err := multimap.OpenVolume(multimap.AtlasTenKIII)
		if err != nil {
			panic(err)
		}
		defer vol.Close()
		opts := []multimap.Option{
			multimap.WithChunkCells(256),
			multimap.WithMaxInflight(2),
			multimap.WithBatchWindow(500 * time.Microsecond),
		}
		if aging > 0 {
			opts = append(opts, multimap.WithDeadlineAging(aging))
		}
		store, err := multimap.Open(vol, multimap.MultiMap, dims, opts...)
		if err != nil {
			panic(err)
		}

		var wg sync.WaitGroup
		for i := 0; i < bulkClients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sess := store.Begin()
				rng := rand.New(rand.NewSource(int64(100 + i)))
				for q := 0; q < bulkQueries; q++ {
					lo := []int{rng.Intn(dims[0] / 2), rng.Intn(dims[1] / 2), rng.Intn(dims[2] / 2)}
					hi := []int{lo[0] + dims[0]/2, lo[1] + dims[1]/2, lo[2] + dims[2]/2}
					if _, err := sess.RangeQuery(context.Background(), lo, hi); err != nil {
						panic(err)
					}
				}
			}(i)
		}

		qos := store.Begin()
		var sumMs float64
		completed := 0
		for q := 0; q < qosQueries; q++ {
			ctx, cancel := context.WithTimeout(context.Background(), qosDeadline)
			st, err := qos.Beam(ctx, 1, []int{10, 0, 42})
			cancel()
			switch {
			case err == nil:
				sumMs += st.ElapsedMs
				completed++
			case errors.Is(err, context.DeadlineExceeded):
				expired++
			default:
				panic(err)
			}
		}
		wg.Wait()
		if completed > 0 {
			meanMs = sumMs / float64(completed)
		}
		return meanMs, expired
	}

	plainMs, plainExpired := run(0)
	agedMs, agedExpired := run(agedAdmission)
	fmt.Printf("  admission in submission order: QoS session %.1f ms/query, %d expired\n",
		plainMs, plainExpired)
	fmt.Printf("  deadline-aware admission (%v): QoS session %.1f ms/query, %d expired\n",
		agedAdmission, agedMs, agedExpired)
	if agedMs > 0 && plainMs > 0 {
		fmt.Printf("  -> %.1fx lower observed latency for the deadline session\n", plainMs/agedMs)
	}
}
