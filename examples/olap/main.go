// OLAP: the paper's TPC-H workload (§5.5). Generates lineitem-style
// rows, aggregates them into the 4-D cube, runs Q1-Q5 against every
// placement, and cross-checks that the fetched cells reconstruct the
// same answers as the in-memory aggregate.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	multimap "repro"
	"repro/internal/olap"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A quarter-scale chunk keeps the example fast; pass scale 1 in
	// mmbench for the paper-size run.
	dims, err := olap.ScaledChunkDims(0.5)
	if err != nil {
		log.Fatal(err)
	}
	items := olap.GenLineItems(rng, 300_000)
	cube, err := olap.BuildCube(items, dims)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := olap.Queries(rng, dims)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TPC-H OLAP cube chunk %v, %d rows aggregated\n\n", dims, len(items))
	for _, q := range queries {
		profit, err := cube.ProfitCents(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %-66s %8d cells, profit $%.2f\n", q.Name, q.Text, q.Cells(), float64(profit)/100)
	}

	fmt.Printf("\n%-10s %8s %8s %8s %8s %8s   (avg ms per cell)\n",
		"mapping", "Q1", "Q2", "Q3", "Q4", "Q5")
	for _, kind := range multimap.Mappings() {
		vol, err := multimap.OpenVolume(multimap.AtlasTenKIII)
		if err != nil {
			log.Fatal(err)
		}
		store, err := multimap.Open(vol, kind, dims)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", kind)
		for _, q := range queries {
			st, err := store.RangeQuery(context.Background(), q.Lo, q.Hi)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.3f", st.MsPerCell())
		}
		fmt.Println()
	}

	fmt.Println("\nQ1/Q3/Q4 include the major order, where Naive and MultiMap")
	fmt.Println("stream; Q2/Q5 do not, and there MultiMap's semi-sequential")
	fmt.Println("access takes over.")
}
