// Earthquake: the paper's non-grid workload (§4.5, §5.4). Builds the
// skewed octree-indexed dataset, detects its uniform subareas, maps
// each with MultiMap, and compares beam queries against the linear
// layouts.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/octree"
	"repro/internal/query"
)

func main() {
	const maxDepth = 6
	tree, err := octree.NewQuakeTree(maxDepth)
	if err != nil {
		log.Fatal(err)
	}
	regions, rest := octree.GrowRegions(tree.UniformSubtrees(), tree.MaxDepth(), 64)
	fmt.Printf("earthquake dataset: %d elements in a %d^3 domain\n",
		tree.NumLeaves(), tree.DomainSide())
	fmt.Printf("uniform-region decomposition: %s\n\n", octree.Coverage(tree, regions, rest))

	rng := rand.New(rand.NewSource(42))
	axes := []string{"X", "Y", "Z"}
	fmt.Printf("%-10s %10s %10s %10s   (avg ms per element, 10 random beams)\n",
		"mapping", axes[0], axes[1], axes[2])

	for _, kind := range mapping.Kinds() {
		vol, err := lvm.New(0, disk.AtlasTenKIII())
		if err != nil {
			log.Fatal(err)
		}
		store, err := octree.NewStore(vol, tree, kind, octree.StoreOptions{DiskIdx: 0})
		if err != nil {
			log.Fatal(err)
		}
		var per [3]float64
		for axis := 0; axis < 3; axis++ {
			var total float64
			var cells int64
			for run := 0; run < 10; run++ {
				p := [3]int{rng.Intn(tree.DomainSide()), rng.Intn(tree.DomainSide()), rng.Intn(tree.DomainSide())}
				leaves, err := store.BeamLeaves(axis, p)
				if err != nil {
					log.Fatal(err)
				}
				reqs, policy, err := store.Plan(leaves)
				if err != nil {
					log.Fatal(err)
				}
				st, err := query.Execute(vol, reqs, policy)
				if err != nil {
					log.Fatal(err)
				}
				total += st.TotalMs
				cells += st.Cells
			}
			per[axis] = total / float64(cells)
		}
		fmt.Printf("%-10s %10.3f %10.3f %10.3f\n", kind, per[0], per[1], per[2])
	}

	fmt.Println("\nMultiMap grids each uniform subarea separately (the dense")
	fmt.Println("near-surface slab dominates) and reverts to a linear layout for")
	fmt.Println("the mixed-resolution remainder, as §4.5 prescribes.")
}
