// Quickstart: map a 3-D dataset with each of the paper's four
// placements and compare a beam query along every dimension — a
// miniature of the paper's Fig. 6(a).
package main

import (
	"context"
	"fmt"
	"log"

	multimap "repro"
)

func main() {
	// The paper's per-disk chunk of the synthetic dataset, scaled to
	// half so the example runs in a couple of seconds.
	dims := []int{130, 130, 130}

	fmt.Printf("beam queries over a %v dataset on a %s\n\n", dims, "Maxtor Atlas 10k III")
	fmt.Printf("%-10s %10s %10s %10s   (avg ms per cell)\n", "mapping", "Dim0", "Dim1", "Dim2")

	for _, kind := range multimap.Mappings() {
		// A fresh volume per mapping keeps head state comparable.
		vol, err := multimap.OpenVolume(multimap.AtlasTenKIII)
		if err != nil {
			log.Fatal(err)
		}
		store, err := multimap.Open(vol, kind, dims)
		if err != nil {
			log.Fatal(err)
		}
		var per [3]float64
		for dim := 0; dim < 3; dim++ {
			stats, err := store.Beam(context.Background(), dim, []int{64, 64, 64})
			if err != nil {
				log.Fatal(err)
			}
			per[dim] = stats.MsPerCell()
		}
		fmt.Printf("%-10s %10.3f %10.3f %10.3f\n", kind, per[0], per[1], per[2])
	}

	fmt.Println("\nMultiMap streams Dim0 like Naive and fetches the other")
	fmt.Println("dimensions semi-sequentially: no rotational latency, just the")
	fmt.Println("head-settle time per cell.")

	// The adjacency interface is available directly, too.
	vol, err := multimap.OpenVolume(multimap.AtlasTenKIII)
	if err != nil {
		log.Fatal(err)
	}
	adjs, err := vol.GetAdjacent(0, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst adjacent blocks of LBN 0: %v (D=%d available)\n",
		adjs, vol.AdjacencyDepth())
}
