// Declustering: §4.4's multi-disk story. MultiMap declusters basic
// cubes across the drives of a logical volume round-robin; per-disk
// access latency is unchanged while throughput scales with the number
// of spindles.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lvm"
)

func main() {
	dims := []int{130, 130, 130}

	fmt.Printf("range query (half the %v dataset) on 1, 2, and 4 drives:\n\n", dims)
	fmt.Printf("%7s %14s %14s %10s\n", "drives", "busy ms (sum)", "elapsed ms", "speedup")

	var base float64
	for _, n := range []int{1, 2, 4} {
		geoms := make([]*disk.Geometry, n)
		for i := range geoms {
			geoms[i] = disk.AtlasTenKIII()
		}
		vol, err := lvm.New(0, geoms...)
		if err != nil {
			log.Fatal(err)
		}
		// DiskIdx -1 declusters the basic cubes across all drives.
		m, err := core.NewMapping(vol, dims, core.MapOptions{DiskIdx: -1})
		if err != nil {
			log.Fatal(err)
		}

		// Fetch a large slab: all Dim0 runs for half the (x1, x2) plane.
		var reqs []lvm.Request
		for x2 := 0; x2 < dims[2]/2; x2++ {
			for x1 := 0; x1 < dims[1]; x1++ {
				rs, err := m.Dim0Run([]int{0, x1, x2}, dims[0])
				if err != nil {
					log.Fatal(err)
				}
				reqs = append(reqs, rs...)
			}
		}
		comps, elapsed, err := vol.ServeBatch(reqs, disk.SchedSPTF)
		if err != nil {
			log.Fatal(err)
		}
		var busy float64
		for _, c := range comps {
			busy += c.Cost.TotalMs()
		}
		if n == 1 {
			base = elapsed
		}
		fmt.Printf("%7d %14.0f %14.0f %9.2fx\n", n, busy, elapsed, base/elapsed)

		perDisk := map[int]int{}
		for _, c := range comps {
			perDisk[c.DiskIdx] += c.Req.Count
		}
		fmt.Printf("        blocks per drive: %v\n", perDisk)
	}

	fmt.Println("\nTotal positioning work is constant; wall-clock time drops as")
	fmt.Println("cubes spread over more spindles — 'MultiMap works nicely with")
	fmt.Println("existing declustering methods' (§4.4).")
}
