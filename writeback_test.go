package multimap

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// wbPair opens two identical updatable cache-on stores, one with
// write-back (triggers pushed out of the way so only read dependencies
// and explicit flushes commit) and one write-through — the comparison
// axis of the coherence tests.
func wbPair(t *testing.T, opts UpdateOptions) (wb, plain *Store) {
	t.Helper()
	open := func(extra ...Option) *Store {
		v, err := OpenVolumeDepth(32, MediumTestDisk)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(v, MultiMap, []int{30, 8, 5},
			append([]Option{WithCache(1 << 20), Updatable(opts)}, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return open(WithWriteBack(1<<40, time.Hour)), open()
}

// TestFetchCellWriteBackCoherence extends the PR 3 headline regression
// test to write-back mode: with the extent cache on, FetchCell after a
// buffered-but-unflushed Insert/Delete must return exactly the Stats a
// write-back-off store reports — the read-dependency trigger commits
// the dirty data first, so a read never observes pre-write disk state
// and no stale cached extent is ever replayed.
func TestFetchCellWriteBackCoherence(t *testing.T) {
	opts := UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1), ReclaimBelow: Frac(0.3)}
	wb, plain := wbPair(t, opts)
	cell := []int{4, 1, 2}

	both := func(op string, f func(u *Store) (Stats, error)) (Stats, Stats) {
		t.Helper()
		a, err := f(wb)
		if err != nil {
			t.Fatalf("%s (write-back): %v", op, err)
		}
		b, err := f(plain)
		if err != nil {
			t.Fatalf("%s (write-through): %v", op, err)
		}
		return a, b
	}
	compare := func(op string, a, b Stats) {
		t.Helper()
		if a != b {
			t.Fatalf("%s: write-back stats %+v != write-through stats %+v", op, a, b)
		}
	}
	fetch := func(u *Store) (Stats, error) { return u.FetchCell(context.Background(), cell) }

	// Load two points (one block, below the 4-point capacity so later
	// single inserts dirty exactly one extent). The write-back store
	// only buffers it.
	if st, err := wb.LoadCell(context.Background(), cell, 2); err != nil || st.TotalMs != 0 {
		t.Fatalf("load not absorbed by write-back: %+v err=%v", st, err)
	}
	if st, err := plain.LoadCell(context.Background(), cell, 2); err != nil || st.TotalMs <= 0 {
		t.Fatalf("write-through load not charged: %+v err=%v", st, err)
	}
	if tot := wb.ShardServiceTotals()[0]; tot.DirtyBlocks == 0 {
		t.Fatalf("nothing buffered after load: %+v", tot)
	}

	// Cold fetch of the buffered-but-unflushed cell: the read dependency
	// flushes first, and one absorbed op committed alone is bit-identical
	// to the write-through write — so the fetch costs must match exactly.
	a, b := both("fetch-cold", fetch)
	compare("fetch-cold", a, b)
	if tot := wb.ShardServiceTotals()[0]; tot.DirtyBlocks != 0 || tot.FlushBatches != 1 {
		t.Fatalf("read dependency did not commit the buffered load: %+v", tot)
	}

	// The cache is live on both stores: a repeat fetch hits, free.
	a, b = both("fetch-hit", fetch)
	compare("fetch-hit", a, b)
	if a.CacheHits != 1 || a.TotalMs != 0 {
		t.Fatalf("repeat fetch did not hit the cache under write-back: %+v", a)
	}

	// One insert, buffered: the fetch must pay the post-insert cost —
	// the buffered write already invalidated the cached extent — and
	// match the write-through store exactly.
	a, b = both("insert", func(u *Store) (Stats, error) { return u.Insert(context.Background(), cell) })
	if a.TotalMs != 0 || a.Writes == 0 {
		t.Fatalf("insert not absorbed: %+v", a)
	}
	if b.TotalMs <= 0 {
		t.Fatalf("write-through insert not charged: %+v", b)
	}
	a, b = both("fetch-after-insert", fetch)
	if a.CacheHits != 0 {
		t.Fatalf("fetch after buffered insert replayed a stale cached extent: %+v", a)
	}
	compare("fetch-after-insert", a, b)

	// One delete, buffered: same contract.
	if a, _ = both("delete", func(u *Store) (Stats, error) { return u.Delete(context.Background(), cell) }); a.TotalMs != 0 {
		t.Fatalf("delete not absorbed: %+v", a)
	}
	a, b = both("fetch-after-delete", fetch)
	if a.CacheHits != 0 {
		t.Fatalf("fetch after buffered delete replayed a stale cached extent: %+v", a)
	}
	compare("fetch-after-delete", a, b)

	// Burst of inserts driving the chain into overflow: the buffered
	// writes coalesce (that is the perf win — asserted via the service
	// counter), and the fetch still reads the exact post-update chain.
	// Head trajectories legitimately diverge here (one group commit vs
	// eight write-through batches), so the comparison is structural:
	// same chain, same requests, full disk cost, no stale hits.
	for i := 0; i < 8; i++ {
		both("insert-burst", func(u *Store) (Stats, error) { return u.Insert(context.Background(), cell) })
	}
	if tot := wb.ShardServiceTotals()[0]; tot.CoalescedWrites == 0 {
		t.Fatalf("insert burst did not coalesce in the write-back buffer: %+v", tot)
	}
	ca, _ := wb.ChainLen(cell)
	cb, _ := plain.ChainLen(cell)
	if ca != cb || ca != 3 {
		t.Fatalf("chains diverged: write-back %d, write-through %d, want 3", ca, cb)
	}
	a, b = both("fetch-after-burst", fetch)
	if a.CacheHits != 0 || a.TotalMs <= 0 {
		t.Fatalf("fetch after insert burst replayed stale cached extents: %+v", a)
	}
	if a.Cells != b.Cells || a.Requests != b.Requests || a.CacheMisses != b.CacheMisses {
		t.Fatalf("fetch-after-burst shape differs: write-back %+v vs write-through %+v", a, b)
	}
	if tot := wb.ShardServiceTotals()[0]; tot.DirtyBlocks != 0 {
		t.Fatalf("dirty data survived the dependent fetch: %+v", tot)
	}

	// Store.Flush on a clean store is free; Close leaves nothing behind.
	if err := wb.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	wb.Close()
	plain.Close()
}

// TestWriteBackShardedSessionClose: on a sharded write-back store,
// closing a session commits every shard's dirty buffer (the per-shard
// flush-on-close contract at the public layer), and a closed store's
// Flush fails with ErrClosed.
func TestWriteBackShardedSessionClose(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(v, MultiMap, []int{30, 8, 5},
		WithShards(2), Updatable(UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1)}),
		WithWriteBack(1<<40, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	sess := s.Begin()
	// One cell per shard slab.
	for _, cell := range [][]int{{0, 0, 0}, {29, 7, 4}} {
		if st, err := sess.LoadCell(context.Background(), cell, 2); err != nil || st.TotalMs != 0 {
			t.Fatalf("load %v not absorbed: %+v err=%v", cell, st, err)
		}
	}
	for i, tot := range s.ShardServiceTotals() {
		if tot.DirtyBlocks == 0 {
			t.Fatalf("shard %d has nothing buffered: %+v", i, tot)
		}
	}
	if err := sess.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, tot := range s.ShardServiceTotals() {
		if tot.DirtyBlocks != 0 || tot.FlushBatches != 1 {
			t.Fatalf("shard %d not flushed on session close: %+v", i, tot)
		}
	}
	if st := sess.Stats(); st.TotalMs <= 0 || st.FlushBatches != 2 {
		t.Fatalf("flush costs not credited to the closing session: %+v", st)
	}
	s.Close()
	if err := s.Flush(context.Background()); err != ErrClosed {
		t.Fatalf("Flush on closed store: %v, want ErrClosed", err)
	}
}

// TestWriteBackConcurrentUpdates races updating and fetching sessions
// on a write-back store (run with -race) and closes the books with one
// flush: summed session Stats must reproduce the attributed service
// totals — write-back's deferred, shared flush costs included.
func TestWriteBackConcurrentUpdates(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(v, MultiMap, []int{30, 8, 5},
		WithCache(4096), Updatable(UpdateOptions{PointsPerBlock: 8}),
		WithWriteBack(64, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	defer s.Close()

	const clients = 5
	sessions := make([]*Session, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		sessions[i] = s.Begin()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + i)))
			for q := 0; q < 12; q++ {
				cell := []int{rng.Intn(30), rng.Intn(8), rng.Intn(5)}
				var err error
				switch q % 3 {
				case 0:
					_, err = sessions[i].Insert(context.Background(), cell)
				case 1:
					_, err = sessions[i].FetchCell(context.Background(), cell)
				default:
					_, err = sessions[i].LoadCell(context.Background(), cell, 1+rng.Intn(4))
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	var sum Stats
	for _, q := range sessions {
		sum.Accumulate(q.Stats())
	}
	sum.Accumulate(s.def.Stats()) // store-level Flush rides the default session
	tot := s.ShardServiceTotals()[0]
	if tot.DirtyBlocks != 0 {
		t.Fatalf("dirty data left after the closing flush: %+v", tot)
	}
	if sum.Writes == 0 || sum.Cells == 0 {
		t.Fatalf("workload issued no traffic: %+v", sum)
	}
	sum.ElapsedMs = tot.Attributed.ElapsedMs
	want := tot.Attributed
	if sum.Cells != want.Cells || sum.Requests != want.Requests || sum.Writes != want.Writes ||
		sum.CacheHits != want.CacheHits || sum.CacheMisses != want.CacheMisses ||
		sum.InvalidatedBlocks != want.InvalidatedBlocks ||
		sum.CoalescedWrites != want.CoalescedWrites || sum.FlushBatches != want.FlushBatches {
		t.Fatalf("attribution sum broken: sessions %+v vs attributed %+v", sum, want)
	}
	if d := math.Abs(sum.TotalMs - want.TotalMs); d > 1e-6*(1+math.Abs(want.TotalMs)) {
		t.Fatalf("attributed time drifted by %g: %+v vs %+v", d, sum, want)
	}
}
