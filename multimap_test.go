package multimap

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

func TestOpenVolume(t *testing.T) {
	v, err := OpenVolume(AtlasTenKIII, CheetahThirtySixES)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumDisks() != 2 {
		t.Errorf("NumDisks=%d", v.NumDisks())
	}
	if v.AdjacencyDepth() != 128 {
		t.Errorf("D=%d, want the paper's 128", v.AdjacencyDepth())
	}
	if v.TotalBlocks() <= 0 {
		t.Error("empty volume")
	}
	if _, err := OpenVolume(); err == nil {
		t.Error("no disks accepted")
	}
	if _, err := OpenVolume("nonsense"); err == nil {
		t.Error("bad model accepted")
	}
}

func TestVolumeAdjacencyInterface(t *testing.T) {
	v, err := OpenVolume(AtlasTenKIII)
	if err != nil {
		t.Fatal(err)
	}
	adjs, err := v.GetAdjacent(1000, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(adjs) != 128 {
		t.Fatalf("got %d adjacent blocks, want 128", len(adjs))
	}
	start, next, err := v.GetTrackBoundaries(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !(start <= 1000 && 1000 < next) {
		t.Fatalf("track boundaries [%d,%d) exclude the block", start, next)
	}
}

func TestStoreQueries(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range Mappings() {
		s, err := Open(v, kind, []int{40, 12, 8})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if s.Mapping() != kind {
			t.Errorf("Mapping()=%v, want %v", s.Mapping(), kind)
		}
		st, err := s.Beam(context.Background(), 1, []int{5, 0, 3})
		if err != nil {
			t.Fatalf("%v beam: %v", kind, err)
		}
		if st.Cells != 12 {
			t.Errorf("%v: beam fetched %d cells, want 12", kind, st.Cells)
		}
		st, err = s.RangeQuery(context.Background(), []int{0, 0, 0}, []int{10, 4, 2})
		if err != nil {
			t.Fatalf("%v range: %v", kind, err)
		}
		if st.Cells != 80 {
			t.Errorf("%v: range fetched %d cells, want 80", kind, st.Cells)
		}
		if _, err := s.CellLBN([]int{0, 0, 0}); err != nil {
			t.Errorf("%v: CellLBN: %v", kind, err)
		}
	}
	if _, err := Open(v, MultiMap, []int{40, 12, 8}, WithCapacity(1<<20)); err == nil {
		t.Error("pool-only WithCapacity accepted by plain Open")
	}
	if _, err := Open(v, MultiMap, []int{40, 12, 8}, WithDrives(0)); err == nil {
		t.Error("pool-only WithDrives accepted by plain Open")
	}
	if _, err := Open(v, MultiMap, []int{40, 12, 8}, WithChunkCells(-1)); err == nil {
		t.Error("negative PlanChunkCells accepted")
	}
	if _, err := Open(v, MultiMap, []int{40, 12, 8}, WithBatchWindow(-1)); err == nil {
		t.Error("negative BatchWindow accepted")
	}
}

// TestStoreMatchesDirectExecutor: the store's service path (one
// session, cache off) must reproduce the synchronous executor's Stats
// bit for bit — the refactor's equivalence guarantee at the API level.
func TestStoreMatchesDirectExecutor(t *testing.T) {
	dims := []int{40, 12, 8}
	for _, kind := range Mappings() {
		vs, err := OpenVolumeDepth(32, MediumTestDisk)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(vs, kind, dims)
		if err != nil {
			t.Fatal(err)
		}
		vd, err := lvm.New(32, mustGeom(t))
		if err != nil {
			t.Fatal(err)
		}
		m, err := mapping.New(kind, vd, dims, mapping.Options{DiskIdx: 0})
		if err != nil {
			t.Fatal(err)
		}
		direct := query.NewExecutor(vd, m)

		gotB, err := s.Beam(context.Background(), 2, []int{7, 3, 0})
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := direct.Beam(2, []int{7, 3, 0})
		if err != nil {
			t.Fatal(err)
		}
		if gotB != wantB {
			t.Errorf("%v: store beam %+v != direct executor %+v", kind, gotB, wantB)
		}
		gotR, err := s.RangeQuery(context.Background(), []int{1, 1, 1}, []int{20, 9, 5})
		if err != nil {
			t.Fatal(err)
		}
		wantR, err := direct.Range([]int{1, 1, 1}, []int{20, 9, 5})
		if err != nil {
			t.Fatal(err)
		}
		if gotR != wantR {
			t.Errorf("%v: store range %+v != direct executor %+v", kind, gotR, wantR)
		}
		vs.Close()
	}
}

func mustGeom(t *testing.T) *disk.Geometry {
	t.Helper()
	g, err := disk.ModelByName(string(MediumTestDisk))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestConcurrentStoreSessions is the serving-layer race test: several
// goroutines issue mixed beam and range queries through their own
// sessions of two stores on one volume (run with -race). Every query
// must be credited exactly its cells, and the per-session totals must
// sum to the service loop's attributed totals.
func TestConcurrentStoreSessions(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	dims := []int{40, 12, 8}
	mm, err := Open(v, MultiMap, dims, WithCache(4096), WithMaxInflight(2))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := Open(v, Hilbert, dims)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	sessions := make([]*Session, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		st := mm
		if i%2 == 1 {
			st = hb
		}
		sessions[i] = st.Begin()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(31 + i)))
			for q := 0; q < 8; q++ {
				if rng.Intn(2) == 0 {
					dim := rng.Intn(3)
					fixed := []int{rng.Intn(40), rng.Intn(12), rng.Intn(8)}
					st, err := sessions[i].Beam(context.Background(), dim, fixed)
					if err != nil {
						errs[i] = err
						return
					}
					if st.Cells != int64(dims[dim]) {
						errs[i] = errWrongCells(st.Cells, int64(dims[dim]))
						return
					}
				} else {
					lo := []int{rng.Intn(20), rng.Intn(6), rng.Intn(4)}
					hi := []int{lo[0] + 1 + rng.Intn(10), lo[1] + 1 + rng.Intn(4), lo[2] + 1 + rng.Intn(3)}
					want := int64(hi[0]-lo[0]) * int64(hi[1]-lo[1]) * int64(hi[2]-lo[2])
					st, err := sessions[i].RangeQuery(context.Background(), lo, hi)
					if err != nil {
						errs[i] = err
						return
					}
					if st.Cells != want {
						errs[i] = errWrongCells(st.Cells, want)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	var sum Stats
	for _, s := range sessions {
		sum.Accumulate(s.Stats())
	}
	tot := v.ServiceTotals()
	if tot.Batches == 0 {
		t.Fatal("service loop served nothing")
	}
	// Sessions observe per-chunk elapsed, the loop per-batch; every
	// other field must match to attribution precision.
	if sum.Cells != tot.Attributed.Cells || sum.Requests != tot.Attributed.Requests ||
		sum.Padding != tot.Attributed.Padding ||
		sum.CacheHits != tot.Attributed.CacheHits || sum.CacheMisses != tot.Attributed.CacheMisses {
		t.Fatalf("session sums %+v != service totals %+v", sum, tot.Attributed)
	}
	if diff := math.Abs(sum.TotalMs - tot.Attributed.TotalMs); diff > 1e-6*(1+sum.TotalMs) {
		t.Fatalf("attributed time drift %g: %v vs %v", diff, sum.TotalMs, tot.Attributed.TotalMs)
	}

	// Reset under a live service must leave a clean volume behind.
	v.Reset()
	if tot := v.ServiceTotals(); tot.Batches != 0 {
		t.Fatalf("reset kept totals %+v", tot)
	}
	st, err := mm.Beam(context.Background(), 1, []int{5, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 12 || st.CacheHits != 0 {
		t.Fatalf("post-reset query wrong: %+v", st)
	}
}

func errWrongCells(got, want int64) error {
	return fmt.Errorf("fetched %d cells, want %d", got, want)
}

func TestParseMappingAndModels(t *testing.T) {
	k, err := ParseMapping("multimap")
	if err != nil || k != MultiMap {
		t.Errorf("ParseMapping: %v %v", k, err)
	}
	if len(DiskModels()) < 4 {
		t.Error("missing disk models")
	}
	if len(Mappings()) != 4 {
		t.Error("paper compares four mappings")
	}
}

func TestAnalyticModelFacade(t *testing.T) {
	// Paper-scale chunk: at smaller scales Naive's Dim1 stride stays
	// within one track and genuinely wins, as the model correctly says.
	m, err := NewModel(AtlasTenKIII, []int{259, 259, 259})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.BasicCube()) != 3 {
		t.Error("basic cube arity wrong")
	}
	nb, err := m.EstimateBeamMs(Naive, 1)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := m.EstimateBeamMs(MultiMap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mb >= nb {
		t.Errorf("model: MultiMap beam %.1f not better than Naive %.1f", mb, nb)
	}
	if _, err := m.EstimateBeamMs(Hilbert, 1); err == nil {
		t.Error("model should only cover Naive and MultiMap")
	}
	nr, err := m.EstimateRangeMs(Naive, []int{60, 60, 60})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := m.EstimateRangeMs(MultiMap, []int{60, 60, 60})
	if err != nil {
		t.Fatal(err)
	}
	if nr <= 0 || mr <= 0 {
		t.Error("non-positive estimates")
	}
	if _, err := m.EstimateRangeMs(ZOrder, []int{1, 1, 1}); err == nil {
		t.Error("model should only cover Naive and MultiMap")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	cfg := ExperimentConfig{Disks: []DiskModel{AtlasTenKIII}, Scale: 0.15, Runs: 2, Seed: 5}
	for _, id := range []string{"fig1a", "fig1b"} {
		tb, err := RunExperiment(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 || !strings.Contains(tb.String(), id) {
			t.Errorf("%s: empty table", id)
		}
	}
	if _, err := RunExperiment("fig99", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentIDs()) != 12 {
		t.Errorf("want 12 experiment ids, got %v", ExperimentIDs())
	}
}

// TestShardedStoreEquivalenceAndScatter covers the public sharding
// knob: Shards=1 must reproduce the unsharded store bit for bit on the
// same workload, and Shards>1 must still credit every query its cells,
// fan queries out to the right shards, and keep the attribution-sum
// property across the per-shard service totals.
func TestShardedStoreEquivalenceAndScatter(t *testing.T) {
	dims := []int{40, 12, 8}
	queries := func(s *Store) []Stats {
		t.Helper()
		var out []Stats
		st, err := s.Beam(context.Background(), 0, []int{0, 5, 2})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, st)
		st, err = s.Beam(context.Background(), 2, []int{33, 3, 0})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, st)
		st, err = s.RangeQuery(context.Background(), []int{1, 1, 1}, []int{39, 9, 5})
		if err != nil {
			t.Fatal(err)
		}
		return append(out, st)
	}

	// Shards=1 vs unsharded on fresh identical volumes: bit-identical.
	vPlain, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Open(vPlain, MultiMap, dims)
	if err != nil {
		t.Fatal(err)
	}
	vOne, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Open(vOne, MultiMap, dims, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if one.NumShards() != 1 {
		t.Fatalf("Shards=1 store has %d shards", one.NumShards())
	}
	wantStats := queries(plain)
	gotStats := queries(one)
	for i := range wantStats {
		if gotStats[i] != wantStats[i] {
			t.Fatalf("query %d: Shards=1 stats %+v != unsharded %+v", i, gotStats[i], wantStats[i])
		}
	}

	// Shards=4: correct cells, scatter across shards, per-shard totals.
	v4, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := Open(v4, MultiMap, dims, WithShards(4), WithCache(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	if s4.NumShards() != 4 {
		t.Fatalf("Shards=4 store has %d shards", s4.NumShards())
	}
	got := queries(s4)
	for i, st := range got {
		if st.Cells == 0 {
			t.Fatalf("sharded query %d credited no cells", i)
		}
	}
	if got[0].Cells != int64(dims[0]) || got[1].Cells != int64(dims[2]) {
		t.Fatalf("sharded beams fetched %d/%d cells, want %d/%d",
			got[0].Cells, got[1].Cells, dims[0], dims[2])
	}
	// Cell routing is consistent between ShardOf and CellLBN.
	for _, cell := range [][]int{{0, 0, 0}, {13, 5, 2}, {39, 11, 7}} {
		si, err := s4.ShardOf(cell)
		if err != nil {
			t.Fatal(err)
		}
		if si < 0 || si >= 4 {
			t.Fatalf("ShardOf(%v)=%d", cell, si)
		}
		if _, err := s4.CellLBN(cell); err != nil {
			t.Fatalf("CellLBN(%v): %v", cell, err)
		}
	}
	// The Dim0 queries put work on every shard; session sums must equal
	// the per-shard attributed sums.
	totals := s4.ShardServiceTotals()
	if len(totals) != 4 {
		t.Fatalf("ShardServiceTotals returned %d entries", len(totals))
	}
	var attr Stats
	for i, tot := range totals {
		if tot.Batches == 0 {
			t.Fatalf("shard %d served nothing", i)
		}
		attr.Accumulate(tot.Attributed)
	}
	sum := s4.def.Stats()
	if sum.Cells != attr.Cells || sum.Requests != attr.Requests ||
		sum.CacheHits != attr.CacheHits || sum.CacheMisses != attr.CacheMisses {
		t.Fatalf("session sums %+v != per-shard attributed %+v", sum, attr)
	}
	if diff := math.Abs(sum.TotalMs - attr.TotalMs); diff > 1e-6*(1+sum.TotalMs) {
		t.Fatalf("attributed time drift %g", diff)
	}

	// Store.Reset clears every shard; Store.Close kills the internal
	// shard services (queries fail), while the caller's volume survives.
	s4.Reset()
	for i, tot := range s4.ShardServiceTotals() {
		if tot.Batches != 0 {
			t.Fatalf("shard %d totals survived Reset: %+v", i, tot)
		}
	}
	if st, err := s4.Beam(context.Background(), 0, []int{0, 0, 0}); err != nil || st.Cells != int64(dims[0]) {
		t.Fatalf("post-Reset query wrong: %+v %v", st, err)
	}
	s4.Close()
	if _, err := s4.Beam(context.Background(), 0, []int{0, 0, 0}); err == nil {
		t.Fatal("Dim0 beam succeeded after Store.Close shut the shard services")
	}
	// The caller's volume is still usable by a fresh store.
	fresh, err := Open(v4, MultiMap, dims)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := fresh.Beam(context.Background(), 1, []int{5, 0, 3}); err != nil || st.Cells != int64(dims[1]) {
		t.Fatalf("caller volume unusable after Store.Close: %+v %v", st, err)
	}

	// Validation: negative shard counts and oversharding tiny grids.
	if _, err := Open(v4, MultiMap, dims, WithShards(-1)); err == nil {
		t.Error("negative Shards accepted")
	}
	if _, err := Open(v4, MultiMap, []int{2, 12, 8}, WithShards(4)); err == nil {
		t.Error("more shards than Dim0 cells accepted")
	}
}

// TestShardedConcurrentSessions is the -race exercise for the public
// scatter-gather path: concurrent sessions over a 2-shard store, mixed
// beams and ranges, then the attribution-sum check against the
// per-shard totals.
func TestShardedConcurrentSessions(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{40, 12, 8}
	s, err := Open(v, MultiMap, dims, WithShards(2), WithCache(4096), WithMaxInflight(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients = 4
	sessions := make([]*Session, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		sessions[i] = s.Begin()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(77 + i)))
			for q := 0; q < 8; q++ {
				if rng.Intn(2) == 0 {
					dim := rng.Intn(3)
					fixed := []int{rng.Intn(40), rng.Intn(12), rng.Intn(8)}
					st, err := sessions[i].Beam(context.Background(), dim, fixed)
					if err != nil {
						errs[i] = err
						return
					}
					if st.Cells != int64(dims[dim]) {
						errs[i] = errWrongCells(st.Cells, int64(dims[dim]))
						return
					}
				} else {
					lo := []int{rng.Intn(20), rng.Intn(6), rng.Intn(4)}
					hi := []int{lo[0] + 1 + rng.Intn(20), lo[1] + 1 + rng.Intn(4), lo[2] + 1 + rng.Intn(3)}
					want := int64(hi[0]-lo[0]) * int64(hi[1]-lo[1]) * int64(hi[2]-lo[2])
					st, err := sessions[i].RangeQuery(context.Background(), lo, hi)
					if err != nil {
						errs[i] = err
						return
					}
					if st.Cells != want {
						errs[i] = errWrongCells(st.Cells, want)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	var sum, attr Stats
	for _, sess := range sessions {
		sum.Accumulate(sess.Stats())
	}
	for _, tot := range s.ShardServiceTotals() {
		attr.Accumulate(tot.Attributed)
	}
	if sum.Cells != attr.Cells || sum.Requests != attr.Requests ||
		sum.CacheHits != attr.CacheHits || sum.CacheMisses != attr.CacheMisses {
		t.Fatalf("session sums %+v != per-shard attributed %+v", sum, attr)
	}
	if diff := math.Abs(sum.TotalMs - attr.TotalMs); diff > 1e-6*(1+sum.TotalMs) {
		t.Fatalf("attributed time drift %g", diff)
	}
}

func TestStoreMultiBlockCells(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(v, MultiMap, []int{12, 4, 3}, WithCellBlocks(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.CellBlocks() != 4 {
		t.Fatalf("CellBlocks=%d", s.CellBlocks())
	}
	st, err := s.Beam(context.Background(), 1, []int{3, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 4 {
		t.Fatalf("beam fetched %d cells, want 4", st.Cells)
	}
}
