package multimap

import (
	"strings"
	"testing"
)

func TestOpenVolume(t *testing.T) {
	v, err := OpenVolume(AtlasTenKIII, CheetahThirtySixES)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumDisks() != 2 {
		t.Errorf("NumDisks=%d", v.NumDisks())
	}
	if v.AdjacencyDepth() != 128 {
		t.Errorf("D=%d, want the paper's 128", v.AdjacencyDepth())
	}
	if v.TotalBlocks() <= 0 {
		t.Error("empty volume")
	}
	if _, err := OpenVolume(); err == nil {
		t.Error("no disks accepted")
	}
	if _, err := OpenVolume("nonsense"); err == nil {
		t.Error("bad model accepted")
	}
}

func TestVolumeAdjacencyInterface(t *testing.T) {
	v, err := OpenVolume(AtlasTenKIII)
	if err != nil {
		t.Fatal(err)
	}
	adjs, err := v.GetAdjacent(1000, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(adjs) != 128 {
		t.Fatalf("got %d adjacent blocks, want 128", len(adjs))
	}
	start, next, err := v.GetTrackBoundaries(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !(start <= 1000 && 1000 < next) {
		t.Fatalf("track boundaries [%d,%d) exclude the block", start, next)
	}
}

func TestStoreQueries(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range Mappings() {
		s, err := NewStore(v, kind, []int{40, 12, 8})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if s.Mapping() != kind {
			t.Errorf("Mapping()=%v, want %v", s.Mapping(), kind)
		}
		st, err := s.Beam(1, []int{5, 0, 3})
		if err != nil {
			t.Fatalf("%v beam: %v", kind, err)
		}
		if st.Cells != 12 {
			t.Errorf("%v: beam fetched %d cells, want 12", kind, st.Cells)
		}
		st, err = s.RangeQuery([]int{0, 0, 0}, []int{10, 4, 2})
		if err != nil {
			t.Fatalf("%v range: %v", kind, err)
		}
		if st.Cells != 80 {
			t.Errorf("%v: range fetched %d cells, want 80", kind, st.Cells)
		}
		if _, err := s.CellLBN([]int{0, 0, 0}); err != nil {
			t.Errorf("%v: CellLBN: %v", kind, err)
		}
	}
	if _, err := NewStore(v, MultiMap, []int{40, 12, 8}, StoreOptions{}, StoreOptions{}); err == nil {
		t.Error("two option structs accepted")
	}
	if _, err := NewStore(v, MultiMap, []int{40, 12, 8}, StoreOptions{PlanChunkCells: -1}); err == nil {
		t.Error("negative PlanChunkCells accepted")
	}
}

func TestParseMappingAndModels(t *testing.T) {
	k, err := ParseMapping("multimap")
	if err != nil || k != MultiMap {
		t.Errorf("ParseMapping: %v %v", k, err)
	}
	if len(DiskModels()) < 4 {
		t.Error("missing disk models")
	}
	if len(Mappings()) != 4 {
		t.Error("paper compares four mappings")
	}
}

func TestAnalyticModelFacade(t *testing.T) {
	// Paper-scale chunk: at smaller scales Naive's Dim1 stride stays
	// within one track and genuinely wins, as the model correctly says.
	m, err := NewModel(AtlasTenKIII, []int{259, 259, 259})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.BasicCube()) != 3 {
		t.Error("basic cube arity wrong")
	}
	nb, err := m.EstimateBeamMs(Naive, 1)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := m.EstimateBeamMs(MultiMap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mb >= nb {
		t.Errorf("model: MultiMap beam %.1f not better than Naive %.1f", mb, nb)
	}
	if _, err := m.EstimateBeamMs(Hilbert, 1); err == nil {
		t.Error("model should only cover Naive and MultiMap")
	}
	nr, err := m.EstimateRangeMs(Naive, []int{60, 60, 60})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := m.EstimateRangeMs(MultiMap, []int{60, 60, 60})
	if err != nil {
		t.Fatal(err)
	}
	if nr <= 0 || mr <= 0 {
		t.Error("non-positive estimates")
	}
	if _, err := m.EstimateRangeMs(ZOrder, []int{1, 1, 1}); err == nil {
		t.Error("model should only cover Naive and MultiMap")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	cfg := ExperimentConfig{Disks: []DiskModel{AtlasTenKIII}, Scale: 0.15, Runs: 2, Seed: 5}
	for _, id := range []string{"fig1a", "fig1b"} {
		tb, err := RunExperiment(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 || !strings.Contains(tb.String(), id) {
			t.Errorf("%s: empty table", id)
		}
	}
	if _, err := RunExperiment("fig99", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentIDs()) != 9 {
		t.Errorf("want 9 experiment ids, got %v", ExperimentIDs())
	}
}

func TestStoreMultiBlockCells(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(v, MultiMap, []int{12, 4, 3}, StoreOptions{CellBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.CellBlocks() != 4 {
		t.Fatalf("CellBlocks=%d", s.CellBlocks())
	}
	st, err := s.Beam(1, []int{3, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 4 {
		t.Fatalf("beam fetched %d cells, want 4", st.Cells)
	}
}
