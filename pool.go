package multimap

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/pool"
	"repro/internal/query"
	"repro/internal/shard"
)

// This file is the multi-tenant placement layer: a Pool of simulated
// drives hosts many datasets on thin-provisioned volumes with a full
// lifecycle — Create (a tenant added under live traffic), Grow (online
// capacity extension, so §4.6 overflow growth never requires
// re-opening), Snapshot and Clone (copy-on-write: clone reads fall
// through to the shared frozen extents until a write faults the track
// into private storage), and Destroy. Each tenant is an ordinary Store
// whose shard volumes are extent-mapped views over the pooled drives;
// a tenant whose extents fully own their drives behaves bit-identically
// to the classic single-tenant path.

// PoolOption configures OpenPool.
type PoolOption func(*poolConfig) error

type poolConfig struct {
	models   []DiskModel
	depth    int
	autoGrow int64
}

// WithPoolDrives selects the pool's member drives by model name, one
// drive per name (repeat a name for several identical drives). The
// default pool is the paper's testbed pair: one Atlas 10K III and one
// Cheetah 36ES.
func WithPoolDrives(models ...DiskModel) PoolOption {
	return func(c *poolConfig) error {
		if len(models) == 0 {
			return fmt.Errorf("multimap: WithPoolDrives needs at least one drive model")
		}
		c.models = append([]DiskModel(nil), models...)
		return nil
	}
}

// WithPoolDepth sets the adjacency depth D exported by every volume
// carved from the pool (0 selects the paper's D=128).
func WithPoolDepth(d int) PoolOption {
	return func(c *poolConfig) error {
		if d < 0 {
			return fmt.Errorf("multimap: adjacency depth must be non-negative")
		}
		c.depth = d
		return nil
	}
}

// WithAutoGrow turns on overflow auto-grow for every tenant created in
// (or cloned into) the pool: an updatable tenant whose insert or bulk
// load exhausts its overflow page pool grows itself by increment
// blocks through the ordinary Grow path — online, under live traffic —
// and retries the failed update once, instead of surfacing
// core.ErrOverflowExhausted to the caller. A pool that is genuinely
// out of free extents still errors (the grow fails and the exhaustion
// surfaces). Auto-grown capacity is accounted per drive in
// Pool.Usage's AutoGrownBlocks, so thin-provisioning drift stays
// auditable. The increment must be positive.
func WithAutoGrow(increment int64) PoolOption {
	return func(c *poolConfig) error {
		if increment <= 0 {
			return fmt.Errorf("multimap: auto-grow increment must be positive, got %d", increment)
		}
		c.autoGrow = increment
		return nil
	}
}

// Pool is a set of simulated drives hosting many tenant datasets on
// thin-provisioned volumes. All lifecycle methods are safe for
// concurrent use with each other and with live query traffic on any
// tenant's Store — capacity changes publish atomically to the running
// services.
type Pool struct {
	mu        sync.Mutex
	p         *pool.Pool
	tenants   map[string]*Tenant
	autoGrow  int64   // WithAutoGrow increment; 0 = off
	autoGrown []int64 // per-drive blocks allocated by auto-grows
}

// OpenPool builds a drive pool (see WithPoolDrives / WithPoolDepth).
func OpenPool(opts ...PoolOption) (*Pool, error) {
	var pc poolConfig
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("multimap: nil PoolOption")
		}
		if err := opt(&pc); err != nil {
			return nil, err
		}
	}
	if len(pc.models) == 0 {
		pc.models = []DiskModel{AtlasTenKIII, CheetahThirtySixES}
	}
	geoms := make([]*disk.Geometry, 0, len(pc.models))
	for _, m := range pc.models {
		g, err := disk.ModelByName(string(m))
		if err != nil {
			return nil, err
		}
		geoms = append(geoms, g)
	}
	pp, err := pool.New(pc.depth, geoms...)
	if err != nil {
		return nil, err
	}
	return &Pool{
		p:         pp,
		tenants:   make(map[string]*Tenant),
		autoGrow:  pc.autoGrow,
		autoGrown: make([]int64, len(geoms)),
	}, nil
}

// Tenant is one dataset hosted by a Pool: its Store plus the
// thin-provisioned shard volumes backing it.
type Tenant struct {
	name    string
	store   *Store
	vols    []*pool.Vol
	allowed []int // WithDrives restriction; nil = every pool drive
}

// Name returns the tenant's pool-unique name.
func (t *Tenant) Name() string { return t.name }

// Store returns the tenant's dataset store — the ordinary query and
// update surface.
func (t *Tenant) Store() *Store { return t.store }

// Blocks returns the tenant's allocated pool capacity in blocks (thin
// accounting: what its volumes' extents actually occupy, not what the
// dataset has written).
func (t *Tenant) Blocks() int64 {
	var n int64
	for _, v := range t.vols {
		n += v.Blocks()
	}
	return n
}

// TenantInfo is one tenant's accounting row.
type TenantInfo struct {
	Name   string
	Shards int
	Blocks int64 // allocated pool blocks (thin accounting)
}

// Tenants returns the pool's tenant accounting, sorted by name.
func (p *Pool) Tenants() []TenantInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TenantInfo, 0, len(p.tenants))
	for _, t := range p.tenants {
		out = append(out, TenantInfo{Name: t.name, Shards: len(t.vols), Blocks: t.Blocks()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DriveUsage is one pool drive's space accounting.
type DriveUsage struct {
	Name        string // drive model name
	TotalBlocks int64
	FreeBlocks  int64
	// AutoGrownBlocks is how many of the drive's allocated blocks came
	// from WithAutoGrow growths rather than explicit Create/Grow calls —
	// the thin-provisioning drift auto-grow introduced. Always 0 without
	// WithAutoGrow.
	AutoGrownBlocks int64
}

// Usage returns per-drive space accounting, in drive index order.
func (p *Pool) Usage() []DriveUsage {
	p.mu.Lock()
	defer p.mu.Unlock()
	us := p.p.Usage()
	out := make([]DriveUsage, len(us))
	for i, u := range us {
		out[i] = DriveUsage{
			Name: u.Name, TotalBlocks: u.TotalBlocks, FreeBlocks: u.FreeBlocks,
			AutoGrownBlocks: p.autoGrown[i],
		}
	}
	return out
}

// rotated returns the allowed drive list (nil = all n drives) rotated
// to start at position i mod len — shard i leads with a different
// drive while spilling stays inside the allowed set.
func rotated(n int, allowed []int, i int) []int {
	if len(allowed) == 0 {
		allowed = make([]int, n)
		for k := range allowed {
			allowed[k] = k
		}
	}
	k := i % len(allowed)
	out := make([]int, 0, len(allowed))
	out = append(out, allowed[k:]...)
	return append(out, allowed[:k]...)
}

// Create provisions a new tenant: thin volumes are carved from the
// pool (one per shard, shard i preferring drive i mod the allowed
// list) and the dataset is mapped onto them exactly as Open would.
// All Open options apply, plus the pool-only WithCapacity (initial
// capacity; default auto-sizes from the dataset shape, growing and
// retrying until the mapping fits) and WithDrives (restrict placement
// to given drives). Unlike Open, declustering is the default
// (WithDiskIdx(-1)); pass WithDiskIdx explicitly to pin. Creation is
// safe under live traffic on other tenants.
func (p *Pool) Create(ctx context.Context, name string, kind Mapping, dims []int, opts ...Option) (*Tenant, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if name == "" {
		return nil, fmt.Errorf("multimap: tenant name must be non-empty")
	}
	c := defaultConfig()
	c.poolOpen = true
	c.diskIdx = -1
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("multimap: nil Option")
		}
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.tenants[name]; dup {
		return nil, fmt.Errorf("multimap: tenant %q already exists", name)
	}
	perShard, attempts := p.sizeFor(dims, c)
	var lastErr error
	for a := 0; a < attempts; a++ {
		vols, err := p.provision(c.shards, perShard, c.drives)
		if err != nil {
			if lastErr != nil {
				// The doubled retry ran the pool dry: the mapping error,
				// not the allocator's, names the real problem.
				return nil, fmt.Errorf("%w (grown to %d blocks/shard: %v)", lastErr, perShard, err)
			}
			return nil, err
		}
		wrapped := make([]*Volume, c.shards)
		for i, pv := range vols {
			wrapped[i] = &Volume{v: pv.Volume()}
		}
		c.provision = wrapped
		st, err := open(wrapped[0], kind, dims, c)
		if err == nil {
			if p.autoGrow > 0 && st.cells != nil {
				st.autoGrow = p.autoGrowHook(name)
			}
			t := &Tenant{name: name, store: st, vols: vols, allowed: c.drives}
			p.tenants[name] = t
			return t, nil
		}
		for _, w := range wrapped {
			w.Close()
		}
		for _, pv := range vols {
			pv.Free()
		}
		lastErr = err
		perShard *= 2
	}
	return nil, lastErr
}

// sizeFor estimates a tenant's initial per-shard capacity and how many
// doubling attempts Create may take. An explicit WithCapacity is
// honoured exactly, one attempt; otherwise the estimate covers the
// cells, the default overflow reserve, and basic-cube padding slack,
// and Create doubles on mapping failure.
func (p *Pool) sizeFor(dims []int, c config) (perShard int64, attempts int) {
	shards := int64(c.shards)
	if c.capacity > 0 {
		return (c.capacity + shards - 1) / shards, 1
	}
	cb := int64(c.cellBlocks)
	if cb == 0 {
		cb = 1
	}
	cells := int64(1)
	for _, d := range dims {
		cells *= int64(max(d, 1))
	}
	per := cells * cb / shards
	if c.updatable {
		per += per/8 + 1
	}
	// Track-aligned basic cubes can inflate the mapped footprint far
	// past cells×cellBlocks on small datasets, so give the doubling
	// loop enough headroom to find the real size.
	return per*2 + 1, 10
}

// provision carves one thin volume per shard. Either every shard
// volume is allocated or none is.
func (p *Pool) provision(shards int, perShard int64, allowed []int) ([]*pool.Vol, error) {
	vols := make([]*pool.Vol, 0, shards)
	for i := 0; i < shards; i++ {
		pv, err := p.p.NewVolume(perShard, rotated(p.p.NumDrives(), allowed, i))
		if err != nil {
			for _, v := range vols {
				v.Free()
			}
			return nil, err
		}
		vols = append(vols, pv)
	}
	return vols, nil
}

// Grow extends a tenant's capacity by at least blocks blocks, split
// across its shard volumes, while the tenant serves traffic: the new
// extents publish atomically to the running services (in-flight
// batches finish on the old table; the next admission sees the grown
// volume). On an updatable store the new blocks immediately join the
// shard's overflow pools, so §4.6 chains keep growing past the initial
// capacity without re-opening anything.
func (p *Pool) Grow(ctx context.Context, name string, blocks int64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if blocks <= 0 {
		return fmt.Errorf("multimap: grow must add a positive number of blocks, got %d", blocks)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tenants[name]
	if !ok {
		return fmt.Errorf("multimap: no tenant %q", name)
	}
	return p.growLocked(t, blocks)
}

// growLocked is Grow's body, shared with the auto-grow hook. Caller
// holds p.mu.
func (p *Pool) growLocked(t *Tenant, blocks int64) error {
	shards := int64(len(t.vols))
	per := (blocks + shards - 1) / shards
	for i, pv := range t.vols {
		lv := pv.Volume()
		old := lv.TotalBlocks()
		if err := pv.Grow(per, rotated(p.p.NumDrives(), t.allowed, i)); err != nil {
			return err
		}
		if t.store.cells == nil {
			continue
		}
		// Hand the new segments to the shard's overflow pool, one free
		// extent per segment (the same per-disk carving the initial pool
		// uses, so chains keep spreading).
		var add []lvm.Request
		for si := 0; si < lv.NumDisks(); si++ {
			if lv.DiskStart(si) >= old {
				add = append(add, lvm.Request{VLBN: lv.DiskStart(si), Count: int(lv.DiskBlocks(si))})
			}
		}
		if err := t.store.cells[i].AddOverflow(add); err != nil {
			return err
		}
	}
	return nil
}

// autoGrowHook builds the Store-level retry hook for one tenant: grow
// by the pool's increment through the ordinary Grow path and account
// the allocated blocks per drive. Safe under live traffic — the update
// path invokes it outside any pool lock.
func (p *Pool) autoGrowHook(name string) func() error {
	return func() error {
		p.mu.Lock()
		defer p.mu.Unlock()
		t, ok := p.tenants[name]
		if !ok {
			return fmt.Errorf("multimap: no tenant %q", name)
		}
		before := p.p.Usage()
		if err := p.growLocked(t, p.autoGrow); err != nil {
			return err
		}
		for i, u := range p.p.Usage() {
			p.autoGrown[i] += before[i].FreeBlocks - u.FreeBlocks
		}
		return nil
	}
}

// Snapshot is a frozen, copy-on-write image of a tenant at one
// instant: the volumes' extents at snapshot time plus the dataset's
// chain bookkeeping. Clone materializes new tenants from it; Free
// releases its extent references once no more clones are wanted.
// Snapshots keep their extents alive independently of the source
// tenant, so a snapshot outlives even a destroyed parent.
type Snapshot struct {
	tenant string
	snaps  []*pool.Snap
	cells  []*core.CellStore // frozen chain state; nil for read-only tenants
	grp    *shard.Group      // parent group at snapshot time (shares Mappers)
	dims   []int
	cfg    config
	eo     query.ExecOptions
	freed  bool
}

// Tenant returns the name of the tenant the snapshot was taken from.
func (s *Snapshot) Tenant() string { return s.tenant }

// Snapshot freezes a tenant's current state copy-on-write. The
// tenant's write-back dirty buffers are flushed first, so the frozen
// image carries every acknowledged write — the coherence contract
// between COW and write-back: dirty data never straddles a freeze.
// After the snapshot the source tenant keeps serving; its next write
// to a frozen track pays a copy-out fault (Stats.CowFaultBlocks).
func (p *Pool) Snapshot(ctx context.Context, name string) (*Snapshot, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tenants[name]
	if !ok {
		return nil, fmt.Errorf("multimap: no tenant %q", name)
	}
	if err := t.store.Flush(ctx); err != nil {
		return nil, err
	}
	s := &Snapshot{tenant: name, grp: t.store.grp, dims: t.store.dims,
		cfg: t.store.cfg, eo: t.store.eo}
	for _, pv := range t.vols {
		sn, err := pv.Snapshot()
		if err != nil {
			s.Free()
			return nil, err
		}
		s.snaps = append(s.snaps, sn)
	}
	if t.store.cells != nil {
		s.cells = make([]*core.CellStore, len(t.store.cells))
		for i, cs := range t.store.cells {
			// Frozen copy keeps the parent's locator; Clone rebinds it.
			s.cells[i] = cs.Clone(t.store.grp.Member(i).Map.CellVLBN)
		}
	}
	return s, nil
}

// Free releases the snapshot's extent references. Idempotent; existing
// clones are unaffected (they hold their own references).
func (s *Snapshot) Free() {
	if s.freed {
		return
	}
	s.freed = true
	for _, sn := range s.snaps {
		if sn != nil {
			sn.Free()
		}
	}
}

// Clone materializes a snapshot as a new tenant. The clone's volumes
// reference the snapshot's extents copy-on-write — reads fall through
// to the shared frozen blocks, paying zero extra pool space, until a
// write faults its track into storage the clone owns. The clone
// shares the parent's cell placement outright (the volumes carry
// bit-for-bit the parent's blocks at snapshot time), runs its own
// services configured like the parent's, and diverges independently
// from the first write on either side.
func (p *Pool) Clone(ctx context.Context, snap *Snapshot, name string) (*Tenant, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if snap == nil {
		return nil, fmt.Errorf("multimap: nil Snapshot")
	}
	if name == "" {
		return nil, fmt.Errorf("multimap: tenant name must be non-empty")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if snap.freed {
		return nil, fmt.Errorf("multimap: snapshot of %q already freed", snap.tenant)
	}
	if _, dup := p.tenants[name]; dup {
		return nil, fmt.Errorf("multimap: tenant %q already exists", name)
	}
	t := &Tenant{name: name, allowed: snap.cfg.drives}
	fail := func(err error) (*Tenant, error) {
		for _, pv := range t.vols {
			pv.Free()
		}
		return nil, err
	}
	for _, sn := range snap.snaps {
		pv, err := sn.Clone()
		if err != nil {
			return fail(err)
		}
		t.vols = append(t.vols, pv)
	}
	shards := len(t.vols)
	wrapped := make([]*Volume, shards)
	lvols := make([]*lvm.Volume, shards)
	svcs := make([]*engine.Service, shards)
	for i, pv := range t.vols {
		wrapped[i] = &Volume{v: pv.Volume()}
		lvols[i] = pv.Volume()
		svcs[i] = wrapped[i].service()
	}
	if err := applyServiceConfig(svcs, snap.cfg); err != nil {
		return fail(err)
	}
	grp, err := shard.Rebind(snap.grp, lvols, svcs, snap.eo)
	if err != nil {
		return fail(err)
	}
	st := &Store{
		vol:         wrapped[0],
		extra:       wrapped[1:],
		grp:         grp,
		dims:        append([]int(nil), snap.dims...),
		maxInflight: snap.cfg.maxInflight,
		qosClass:    snap.cfg.qosClass,
		cfg:         snap.cfg,
		eo:          snap.eo,
		lat:         newLatencyRing(),
	}
	if snap.cells != nil {
		st.cells = make([]*core.CellStore, shards)
		for i, cs := range snap.cells {
			st.cells[i] = cs.Clone(grp.Member(i).Map.CellVLBN)
		}
	}
	st.def = st.Begin()
	if p.autoGrow > 0 && st.cells != nil {
		st.autoGrow = p.autoGrowHook(name)
	}
	t.store = st
	p.tenants[name] = t
	return t, nil
}

// Destroy retires a tenant: its store is closed (flushing write-back
// buffers and draining the shard services), its volumes' extent
// references are released back to the pool, and its name becomes free.
// Extents still referenced by snapshots or clones survive until those
// release them. Live sessions on the destroyed store fail with
// ErrClosed; other tenants are unaffected.
func (p *Pool) Destroy(ctx context.Context, name string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	t, ok := p.tenants[name]
	if ok {
		delete(p.tenants, name)
	}
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("multimap: no tenant %q", name)
	}
	t.store.Close()
	t.store.vol.Close()
	for _, pv := range t.vols {
		pv.Free()
	}
	return nil
}
