package multimap

import (
	"context"
	"sync"
	"testing"
)

// TestStoreQoSSessions wires the whole public QoS surface together:
// WithFairShare + WithQoSClass configure weighted-fair admission at
// open, WithQoS sets the default session's class, BeginQoS opens
// classed sessions, and Store.ClassTotals reports the per-class
// bookkeeping sorted by name with every class's traffic on it.
func TestStoreQoSSessions(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(v, MultiMap, []int{40, 12, 8},
		WithShards(2),
		WithCache(4096),
		WithFairShare(256),
		WithQoSClass("interactive", 1, false),
		WithQoSClass("bulk", 4, false),
		WithQoSClass("ops", 2, true),
		WithQoS("interactive"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Store-level ops run on the default session → class "interactive";
	// explicit sessions carry their declared class, concurrently.
	bulk := s.BeginQoS("bulk")
	urgent := s.BeginQoS("ops")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(3)
	go func() {
		defer wg.Done()
		_, errs[0] = s.Beam(context.Background(), 0, []int{0, 3, 2})
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = bulk.RangeQuery(context.Background(), []int{0, 0, 0}, []int{40, 8, 4})
	}()
	go func() {
		defer wg.Done()
		_, errs[2] = urgent.Beam(context.Background(), 1, []int{20, 0, 1})
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	totals := s.ClassTotals()
	got := map[string]ClassTotals{}
	for i, ct := range totals {
		got[ct.Class] = ct
		if i > 0 && totals[i-1].Class >= ct.Class {
			t.Fatalf("ClassTotals not sorted by name: %+v", totals)
		}
	}
	for _, class := range []string{"interactive", "bulk", "ops"} {
		ct, ok := got[class]
		if !ok || ct.Ops == 0 {
			t.Fatalf("class %q shows no traffic: %+v", class, totals)
		}
		if ct.Attributed.Cells == 0 {
			t.Fatalf("class %q has ops but no attributed cells: %+v", class, ct)
		}
	}
	// The urgent class's ops all rode the strict-priority front batch;
	// the weighted classes never did (no deadlines, no aging configured).
	if u := got["ops"]; u.UrgentOps != u.Ops {
		t.Fatalf("urgent class served %d of %d ops urgently", u.UrgentOps, u.Ops)
	}
	if got["interactive"].UrgentOps != 0 || got["bulk"].UrgentOps != 0 {
		t.Fatalf("weighted classes saw urgent service: %+v", totals)
	}

	// Option misuse fails the open.
	if _, err := Open(v, MultiMap, []int{40, 12, 8}, WithFairShare(-1)); err == nil {
		t.Error("negative fair-share quantum accepted")
	}
	if _, err := Open(v, MultiMap, []int{40, 12, 8}, WithQoSClass("x", 0, false)); err == nil {
		t.Error("zero class weight accepted")
	}
	if _, err := Open(v, MultiMap, []int{40, 12, 8},
		WithQoSClass("x", 1, false), WithQoSClass("x", 2, false)); err == nil {
		t.Error("duplicate class registration accepted")
	}
}
