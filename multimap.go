package multimap

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

// DiskModel names a simulated drive.
type DiskModel string

// The built-in drive models. The first two are the paper's testbed.
const (
	AtlasTenKIII       DiskModel = "atlas10k3"
	CheetahThirtySixES DiskModel = "cheetah36es"
	SyntheticModern    DiskModel = "modern"
	SmallTestDisk      DiskModel = "smalltest"
	MediumTestDisk     DiskModel = "mediumtest"
)

// DiskModels lists the available drive model names.
func DiskModels() []string { return disk.ModelNames() }

// Mapping selects a data placement algorithm.
type Mapping = mapping.Kind

// The four placements the paper evaluates, plus the Gray-coded curve
// from related work.
const (
	Naive    = mapping.Naive
	ZOrder   = mapping.ZOrder
	Hilbert  = mapping.Hilbert
	Gray     = mapping.Gray
	MultiMap = mapping.MultiMap
)

// Mappings returns the four placements compared in the paper.
func Mappings() []Mapping { return mapping.Kinds() }

// ParseMapping converts a CLI-friendly name ("naive", "zorder",
// "hilbert", "gray", "multimap") to a Mapping.
func ParseMapping(s string) (Mapping, error) { return mapping.ParseKind(s) }

// Stats is the I/O summary of one query; see MsPerCell for the paper's
// headline metric.
type Stats = query.Stats

// Volume is a logical volume over one or more simulated drives,
// exporting the paper's adjacency interface.
type Volume struct {
	v *lvm.Volume
}

// OpenVolume builds a volume from drive model names with the paper's
// adjacency depth D=128.
func OpenVolume(models ...DiskModel) (*Volume, error) {
	return OpenVolumeDepth(0, models...)
}

// OpenVolumeDepth builds a volume with an explicit adjacency depth
// (0 selects the paper's D=128).
func OpenVolumeDepth(adjDepth int, models ...DiskModel) (*Volume, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("multimap: at least one disk model required")
	}
	geoms := make([]*disk.Geometry, 0, len(models))
	for _, m := range models {
		g, err := disk.ModelByName(string(m))
		if err != nil {
			return nil, err
		}
		geoms = append(geoms, g)
	}
	v, err := lvm.New(adjDepth, geoms...)
	if err != nil {
		return nil, err
	}
	return &Volume{v: v}, nil
}

// NumDisks returns the number of member drives.
func (v *Volume) NumDisks() int { return v.v.NumDisks() }

// TotalBlocks returns the volume capacity in 512-byte blocks.
func (v *Volume) TotalBlocks() int64 { return v.v.TotalBlocks() }

// AdjacencyDepth returns the exported D.
func (v *Volume) AdjacencyDepth() int { return v.v.AdjacencyDepth() }

// GetAdjacent returns up to d adjacent blocks of a volume LBN — the
// first interface call of the paper's LVM (§3.2).
func (v *Volume) GetAdjacent(vlbn int64, d int) ([]int64, error) {
	return v.v.GetAdjacent(vlbn, d)
}

// GetTrackBoundaries returns the half-open LBN interval of the track
// containing vlbn — the second interface call of the paper's LVM.
func (v *Volume) GetTrackBoundaries(vlbn int64) (start, next int64, err error) {
	return v.v.GetTrackBoundaries(vlbn)
}

// Reset restores all drives to their initial head positions and clears
// statistics.
func (v *Volume) Reset() { v.v.Reset() }

// Internal exposes the underlying LVM volume for advanced use (the
// experiment drivers and examples use it).
func (v *Volume) Internal() *lvm.Volume { return v.v }

// StoreOptions tunes dataset placement and query execution.
type StoreOptions struct {
	// DiskIdx pins the dataset to one member drive. -1 lets MultiMap
	// decluster basic cubes across drives (§4.4); linear mappings
	// treat -1 as drive 0.
	DiskIdx int
	// CellBlocks is the cell size in blocks (default 1) — §4's
	// "a single cell can occupy multiple LBNs".
	CellBlocks int
	// Policy forces the drive-internal scheduling policy for every
	// query ("fifo", "sptf", "elevator"); empty keeps each mapping's
	// preferred policy (§5.2). Use it for scheduler comparison runs.
	Policy string
	// PlanChunkCells bounds how many cells the streaming planner
	// expands per dispatch chunk; 0 plans each query as one chunk.
	// Chunking bounds planner memory on huge ranges at the cost of
	// sorting per chunk instead of globally.
	PlanChunkCells int64
}

// Store is a mapped multidimensional dataset ready for queries.
type Store struct {
	vol  *Volume
	m    mapping.Mapper
	exec *query.Executor
}

// NewStore maps an N-dimensional grid dataset (one block per cell)
// onto the volume using the given placement.
func NewStore(vol *Volume, kind Mapping, dims []int, opts ...StoreOptions) (*Store, error) {
	o := StoreOptions{DiskIdx: 0}
	if len(opts) > 1 {
		return nil, fmt.Errorf("multimap: at most one StoreOptions")
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	m, err := mapping.New(kind, vol.v, dims, mapping.Options{
		DiskIdx: o.DiskIdx, CellBlocks: o.CellBlocks,
	})
	if err != nil {
		return nil, err
	}
	eo, err := query.ExecOptionsFor(o.Policy, o.PlanChunkCells)
	if err != nil {
		return nil, err
	}
	return &Store{vol: vol, m: m, exec: query.NewExecutorOptions(vol.v, m, eo)}, nil
}

// CellBlocks returns the store's cell size in blocks.
func (s *Store) CellBlocks() int {
	if cs, ok := s.m.(mapping.CellSized); ok {
		return cs.CellBlocks()
	}
	return 1
}

// Mapping returns the store's placement algorithm.
func (s *Store) Mapping() Mapping { return s.m.Kind() }

// Dims returns the dataset side lengths.
func (s *Store) Dims() []int { return s.m.Dims() }

// CellLBN returns the volume LBN storing a cell — useful for building
// external indexes over the placement.
func (s *Store) CellLBN(cell []int) (int64, error) { return s.m.CellVLBN(cell) }

// Beam fetches all cells along dimension dim with the remaining
// coordinates fixed, and returns the simulated I/O statistics (§5.1).
func (s *Store) Beam(dim int, fixed []int) (Stats, error) { return s.exec.Beam(dim, fixed) }

// RangeQuery fetches the box [lo, hi) (hi exclusive per dimension).
func (s *Store) RangeQuery(lo, hi []int) (Stats, error) { return s.exec.Range(lo, hi) }

// Model is the closed-form analytical cost model (§5) for one drive.
type Model struct {
	m    *analytic.Model
	spec *core.CubeSpec
	dims []int
}

// NewModel builds the analytic model for a drive model and dataset
// shape, using the same basic cube MultiMap would choose.
func NewModel(model DiskModel, dims []int) (*Model, error) {
	g, err := disk.ModelByName(string(model))
	if err != nil {
		return nil, err
	}
	v, err := lvm.New(0, g)
	if err != nil {
		return nil, err
	}
	mm, err := core.NewMapping(v, dims, core.MapOptions{DiskIdx: 0})
	if err != nil {
		return nil, err
	}
	return &Model{m: analytic.New(g), spec: mm.Spec(), dims: append([]int(nil), dims...)}, nil
}

// EstimateBeamMs predicts total beam-query I/O time for a mapping
// (Naive or MultiMap).
func (m *Model) EstimateBeamMs(kind Mapping, dim int) (float64, error) {
	switch kind {
	case Naive:
		return m.m.NaiveBeamMs(m.dims, dim)
	case MultiMap:
		return m.m.MultiMapBeamMs(m.spec, m.dims, dim)
	default:
		return 0, fmt.Errorf("multimap: analytic model covers Naive and MultiMap, not %v", kind)
	}
}

// EstimateRangeMs predicts total range-query I/O time for a box with
// q[i] cells per dimension.
func (m *Model) EstimateRangeMs(kind Mapping, q []int) (float64, error) {
	switch kind {
	case Naive:
		return m.m.NaiveRangeMs(m.dims, q)
	case MultiMap:
		return m.m.MultiMapRangeMs(m.spec, m.dims, q)
	default:
		return 0, fmt.Errorf("multimap: analytic model covers Naive and MultiMap, not %v", kind)
	}
}

// BasicCube returns the basic-cube side lengths the mapping chose
// (§4.2) for inspection.
func (m *Model) BasicCube() []int { return append([]int(nil), m.spec.K...) }
