package multimap

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
	"repro/internal/shard"
)

// DiskModel names a simulated drive.
type DiskModel string

// The built-in drive models. The first two are the paper's testbed.
const (
	AtlasTenKIII       DiskModel = "atlas10k3"
	CheetahThirtySixES DiskModel = "cheetah36es"
	SyntheticModern    DiskModel = "modern"
	SmallTestDisk      DiskModel = "smalltest"
	MediumTestDisk     DiskModel = "mediumtest"
)

// DiskModels lists the available drive model names.
func DiskModels() []string { return disk.ModelNames() }

// Mapping selects a data placement algorithm.
type Mapping = mapping.Kind

// The four placements the paper evaluates, plus the Gray-coded curve
// from related work.
const (
	Naive    = mapping.Naive
	ZOrder   = mapping.ZOrder
	Hilbert  = mapping.Hilbert
	Gray     = mapping.Gray
	MultiMap = mapping.MultiMap
)

// Mappings returns the four placements compared in the paper.
func Mappings() []Mapping { return mapping.Kinds() }

// ParseMapping converts a CLI-friendly name ("naive", "zorder",
// "hilbert", "gray", "multimap") to a Mapping.
func ParseMapping(s string) (Mapping, error) { return mapping.ParseKind(s) }

// Stats is the I/O summary of one query; see MsPerCell for the paper's
// headline metric.
type Stats = query.Stats

// ServiceTotals is the per-volume query service's own bookkeeping:
// admission batches served, how many merged concurrent queries, and the
// aggregate attributed Stats that every session's per-query Stats must
// sum to.
type ServiceTotals = engine.ServiceTotals

// QoSClass declares one admission class for the weighted-fair
// scheduler (see WithQoSClass / WithFairShare).
type QoSClass = engine.QoSClass

// ClassTotals is one QoS class's slice of the service bookkeeping —
// ops served, urgent-front promotions, deferral events, and the
// class's share of the attributed Stats (see Store.ClassTotals).
type ClassTotals = engine.ClassTotals

// Volume is a logical volume over one or more simulated drives,
// exporting the paper's adjacency interface.
//
// All simulated head state lives behind a per-volume query service: a
// single service-loop goroutine (running only while queries are in
// flight) owns the member disks, so any number of stores and sessions
// may query the volume concurrently. Reset is serialized through that
// loop.
type Volume struct {
	v *lvm.Volume

	mu  sync.Mutex
	svc *engine.Service
}

// OpenVolume builds a volume from drive model names with the paper's
// adjacency depth D=128.
func OpenVolume(models ...DiskModel) (*Volume, error) {
	return OpenVolumeDepth(0, models...)
}

// OpenVolumeDepth builds a volume with an explicit adjacency depth
// (0 selects the paper's D=128).
func OpenVolumeDepth(adjDepth int, models ...DiskModel) (*Volume, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("multimap: at least one disk model required")
	}
	geoms := make([]*disk.Geometry, 0, len(models))
	for _, m := range models {
		g, err := disk.ModelByName(string(m))
		if err != nil {
			return nil, err
		}
		geoms = append(geoms, g)
	}
	v, err := lvm.New(adjDepth, geoms...)
	if err != nil {
		return nil, err
	}
	return &Volume{v: v}, nil
}

// NumDisks returns the number of member drives.
func (v *Volume) NumDisks() int { return v.v.NumDisks() }

// TotalBlocks returns the volume capacity in 512-byte blocks.
func (v *Volume) TotalBlocks() int64 { return v.v.TotalBlocks() }

// AdjacencyDepth returns the exported D.
func (v *Volume) AdjacencyDepth() int { return v.v.AdjacencyDepth() }

// GetAdjacent returns up to d adjacent blocks of a volume LBN — the
// first interface call of the paper's LVM (§3.2).
func (v *Volume) GetAdjacent(vlbn int64, d int) ([]int64, error) {
	return v.v.GetAdjacent(vlbn, d)
}

// GetTrackBoundaries returns the half-open LBN interval of the track
// containing vlbn — the second interface call of the paper's LVM.
func (v *Volume) GetTrackBoundaries(vlbn int64) (start, next int64, err error) {
	return v.v.GetTrackBoundaries(vlbn)
}

// service returns the volume's query service, created on first use.
// Its loop goroutine runs only while queries are in flight, so an idle
// volume holds no goroutine. A service found mid-Close is waited out
// (Close is idempotent and returns at quiescence) and replaced, so a
// store built concurrently with Volume.Close still gets a live
// service rather than a permanently dead one.
func (v *Volume) service() *engine.Service {
	for {
		v.mu.Lock()
		if v.svc == nil {
			v.svc = engine.NewService(v.v, engine.ServiceOptions{})
			svc := v.svc
			v.mu.Unlock()
			return svc
		}
		svc := v.svc
		v.mu.Unlock()
		if !svc.Closed() {
			return svc
		}
		v.retire(svc)
	}
}

// retire waits for a closed service to drain and clears it from v.svc
// (unless another goroutine already replaced it). Only after the drain
// may anything else own the disks.
func (v *Volume) retire(svc *engine.Service) {
	svc.Close()
	v.mu.Lock()
	if v.svc == svc {
		v.svc = nil
	}
	v.mu.Unlock()
}

// Reset restores all drives to their initial head positions and clears
// statistics and the extent cache. When the query service is running,
// the reset is serialized after every in-flight batch, so it is safe to
// call while other goroutines query the volume.
func (v *Volume) Reset() {
	for {
		v.mu.Lock()
		svc := v.svc
		if svc == nil {
			// No service: holding mu excludes a concurrent NewStore from
			// starting one mid-reset, so the direct reset is race-free.
			v.v.Reset()
			v.mu.Unlock()
			return
		}
		v.mu.Unlock()
		if svc.Reset() == nil {
			return
		}
		// That service was closed concurrently. Wait out its drain and
		// clear it, then re-evaluate — no spinning while it drains.
		v.retire(svc)
	}
}

// Close shuts the volume's query service, waiting for in-flight
// batches so the caller regains exclusive use of the volume. Queries on
// existing stores and sessions fail afterwards; a new store restarts
// the service. Close is optional — an idle service holds no resources.
func (v *Volume) Close() {
	v.mu.Lock()
	svc := v.svc
	v.mu.Unlock()
	if svc == nil {
		return
	}
	// Drain before forgetting the service: while batches are still in
	// flight the loop goroutine owns the disk head state, so v.svc must
	// keep pointing at it — otherwise a concurrent Reset or NewStore
	// would see "no service" and touch the disks alongside the loop.
	v.retire(svc)
}

// ServiceTotals snapshots the query service's bookkeeping (zero before
// the first store is built).
func (v *Volume) ServiceTotals() ServiceTotals {
	v.mu.Lock()
	svc := v.svc
	v.mu.Unlock()
	if svc == nil {
		return ServiceTotals{}
	}
	return svc.Totals()
}

// Internal exposes the underlying LVM volume for advanced use (the
// experiment drivers and examples use it).
func (v *Volume) Internal() *lvm.Volume { return v.v }

// ErrClosed is returned by store and session operations after the
// backing query service has been shut down — Store.Close on the
// store's internally created shard volumes, or Volume.Close on the
// caller's own volume. Test with errors.Is.
var ErrClosed = engine.ErrClosed

// ErrNotUpdatable is returned by the update operations (Insert,
// Delete, LoadCell and the chain inspectors) on a store that was
// opened without the Updatable option.
var ErrNotUpdatable = errors.New("multimap: store opened without Updatable")

// Store is a mapped multidimensional dataset ready for queries — and,
// when opened with the Updatable option, online updates (§4.6). Its
// operation methods submit to the shard services through a default
// session and are safe to call from multiple goroutines; use Begin for
// per-client sessions with their own Stats attribution.
//
// Every blocking operation takes a context.Context first: cancel it or
// give it a deadline and the operation's queued work is dropped before
// admission (never charging simulated I/O for work not issued), the
// partial Stats of the work that WAS issued are returned alongside the
// context's error, and Stats.Cancelled/DeadlineExceeded count the
// dropped operations. Pair context.WithDeadline with the
// WithDeadlineAging open option to make deadlines a QoS signal the
// admission batcher honors.
//
// A store always executes through a shard group. The default single
// shard lives on the volume the store was built on, so nothing changes
// for unsharded use; with WithShards(n > 1) the dataset spans that
// volume plus internally created ones, every query fanning out to the
// shards it touches.
type Store struct {
	vol         *Volume   // primary volume (shard 0)
	extra       []*Volume // internally created shard volumes 1..N-1
	grp         *shard.Group
	dims        []int
	maxInflight int
	qosClass    string            // default session's QoS class (WithQoS)
	cells       []*core.CellStore // one chain tracker per shard; nil unless Updatable
	cfg         config            // resolved open config (clone re-applies it)
	eo          query.ExecOptions
	def         *Session
	lat         *engine.LatencyRing // completed-query latency ring (Metrics)
	closed      atomic.Bool
	// autoGrow, when set (pool tenants under WithAutoGrow), adds
	// overflow capacity through the pool's Grow path; the update path
	// calls it once on core.ErrOverflowExhausted and retries.
	autoGrow func() error
}

// Open maps an N-dimensional grid dataset onto the volume using the
// given placement and returns the store, configured by functional
// options (WithPolicy, WithChunkCells, WithCache, WithMaxInflight,
// WithShards, WithBatchWindow, WithDeadlineAging, WithFairShare,
// WithQoSClass, WithQoS, WithWriteBack, WithDiskIdx, WithCellBlocks,
// Updatable). With WithShards(n > 1) the dataset is
// split along Dim0 across that many shard volumes (the given volume
// plus internally created clones of its hardware); with Updatable the
// store also serves Insert/Delete/LoadCell.
func Open(vol *Volume, kind Mapping, dims []int, opts ...Option) (*Store, error) {
	c := defaultConfig()
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("multimap: nil Option")
		}
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	return open(vol, kind, dims, c)
}

// open builds a store from a resolved config — the shared tail of Open
// and Pool.Create. When c.provision is set (pool tenants), the shard
// volumes were pre-allocated from the pool, shard 0 included;
// otherwise shards 1..N-1 mirror the caller's volume hardware via
// NewLike, exactly the classic path.
func open(vol *Volume, kind Mapping, dims []int, c config) (*Store, error) {
	eo, err := query.ExecOptionsFor(c.policy, c.chunkCells)
	if err != nil {
		return nil, err
	}
	s := &Store{vol: vol, dims: append([]int(nil), dims...), maxInflight: c.maxInflight,
		qosClass: c.qosClass, cfg: c, eo: eo, lat: newLatencyRing()}
	shardVols := []*Volume{vol}
	if c.provision != nil {
		if len(c.provision) != c.shards || c.provision[0] != vol {
			return nil, fmt.Errorf("multimap: provisioned %d shard volumes for %d shards", len(c.provision), c.shards)
		}
		shardVols = c.provision
		s.extra = append(s.extra, c.provision[1:]...)
	} else {
		for i := 1; i < c.shards; i++ {
			sv := &Volume{v: lvm.NewLike(vol.v)}
			s.extra = append(s.extra, sv)
			shardVols = append(shardVols, sv)
		}
	}
	vols := make([]*lvm.Volume, c.shards)
	svcs := make([]*engine.Service, c.shards)
	for i, sv := range shardVols {
		vols[i] = sv.v
		svcs[i] = sv.service()
	}
	s.grp, err = shard.Build(vols, svcs, kind, dims, mapping.Options{
		DiskIdx: c.diskIdx, CellBlocks: c.cellBlocks,
	}, eo)
	if err != nil {
		return nil, err
	}
	if err := applyServiceConfig(svcs, c); err != nil {
		return nil, err
	}
	if c.updatable {
		if err := s.initUpdatable(c.update); err != nil {
			return nil, err
		}
	}
	s.def = s.Begin()
	return s, nil
}

// applyServiceConfig pushes the config's service-level knobs (cache,
// admission window, deadline aging, write-back, fair sharing) onto
// every shard service — shared by open and the pool's clone path,
// which rebuilds services for cloned volumes under the parent's
// config.
func applyServiceConfig(svcs []*engine.Service, c config) error {
	for _, svc := range svcs {
		if c.cacheBlocks > 0 {
			if err := svc.ConfigureCache(c.cacheBlocks); err != nil {
				return err
			}
		}
		if c.batchWindow > 0 {
			svc.SetBatchWindow(c.batchWindow)
		}
		if c.deadlineAging > 0 {
			svc.SetDeadlineAging(c.deadlineAging)
		}
		if c.writeBack {
			if err := svc.SetWriteBack(engine.WriteBackOptions{
				Enabled:         true,
				WatermarkBlocks: c.wbWatermark,
				FlushInterval:   c.wbInterval,
			}); err != nil {
				return err
			}
		}
		if c.fairQuantum > 0 {
			if err := svc.SetFairShare(c.fairQuantum, c.classes); err != nil {
				return err
			}
		}
		if c.pipeline > 0 {
			svc.SetPipeline(c.pipeline)
		}
	}
	return nil
}

// Session is one client's handle for issuing operations concurrently
// with other sessions on the same shard volumes: the query operations
// (Beam, RangeQuery, FetchCell) on any store, plus the update
// operations (Insert, Delete, LoadCell) on a store opened with
// Updatable. Each service loop merges in-flight sessions' requests
// into shared disk batches and attributes costs back, so each
// operation's Stats remain its own; on a sharded store a query's Stats
// are the sum of its per-shard parts.
//
// Every operation takes a context first; see Store for the
// cancellation and partial-stats contract.
type Session struct {
	s  *Store
	ss *shard.Session
}

// Begin opens a new session on the store: one engine session per shard
// service, driven scatter-gather. Sessions are bound to the services
// the store was built on: after Store.Close or Volume.Close they fail
// with ErrClosed, rather than resurrecting a service. The session
// inherits the store's default QoS class (WithQoS); use BeginQoS for
// an explicit class.
func (s *Store) Begin() *Session {
	return s.BeginQoS(s.qosClass)
}

// BeginQoS opens a new session declared in the given QoS class: every
// operation the session submits is queued, scheduled, cached, and
// accounted under it by the weighted-fair admission batcher (see
// WithFairShare / WithQoSClass). "" is the default class; with fair
// sharing off the class only labels the per-class accounting.
func (s *Store) BeginQoS(class string) *Session {
	return &Session{
		s:  s,
		ss: s.grp.Begin(engine.SessionOptions{MaxInflight: s.maxInflight, Class: class}),
	}
}

// check gates every session operation: a closed store fails fast with
// ErrClosed (instead of racing the retired service loop), and a nil
// context is treated as context.Background().
func (q *Session) check(ctx context.Context) (context.Context, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.s.closed.Load() {
		return ctx, ErrClosed
	}
	return ctx, nil
}

// checkMutate additionally refuses an already-done context before an
// update operation mutates any in-memory cell state, so a clean abort
// leaves nothing half-applied.
func (q *Session) checkMutate(ctx context.Context) (context.Context, error) {
	ctx, err := q.check(ctx)
	if err != nil {
		return ctx, err
	}
	return ctx, ctx.Err()
}

// Beam runs the paper's beam query through this session. On a sharded
// store a Dim0 beam fans out to every shard; beams along the other
// dimensions land on exactly one.
func (q *Session) Beam(ctx context.Context, dim int, fixed []int) (Stats, error) {
	ctx, err := q.check(ctx)
	if err != nil {
		return Stats{}, err
	}
	start := time.Now()
	st, err := q.ss.Beam(ctx, dim, fixed)
	if err == nil {
		q.s.recordQueryLatency(start)
	}
	return st, err
}

// RangeQuery fetches the box [lo, hi) through this session,
// scatter-gather across the shards the box touches. Cancelling ctx
// mid-query cancels every shard's remaining work and returns the
// partial Stats merged so far with ctx's error.
func (q *Session) RangeQuery(ctx context.Context, lo, hi []int) (Stats, error) {
	ctx, err := q.check(ctx)
	if err != nil {
		return Stats{}, err
	}
	start := time.Now()
	st, err := q.ss.Box(ctx, lo, hi)
	if err == nil {
		q.s.recordQueryLatency(start)
	}
	return st, err
}

// RangeChunk is one retired chunk of a streaming range query: the
// chunk's own Stats (cell units, like the query's final aggregate), the
// shard that served it, and its 0-based delivery sequence within the
// query.
type RangeChunk struct {
	Seq   int
	Shard int
	Stats Stats
}

// RangeQueryStream runs the box [lo, hi) like RangeQuery while
// streaming results chunk-by-chunk: as each plan chunk retires from the
// service, onChunk receives its RangeChunk — while later chunks are
// still being planned and served, so a consumer (the network daemon's
// wire streaming) ships partial results long before the query
// completes. onChunk is invoked from internal goroutines but never
// concurrently, in delivery order; it must not block longer than the
// consumer can afford, since the submitting goroutine waits on it
// between chunk retirements. Cancelled or expired work invokes nothing
// — the usual partial-Stats contract applies to the returned aggregate,
// which is identical to RangeQuery's. A nil onChunk degrades to
// RangeQuery exactly.
func (q *Session) RangeQueryStream(ctx context.Context, lo, hi []int, onChunk func(RangeChunk)) (Stats, error) {
	ctx, err := q.check(ctx)
	if err != nil {
		return Stats{}, err
	}
	start := time.Now()
	var hook func(int, engine.Stats)
	if onChunk != nil {
		seq := 0 // BoxStream serializes callbacks, so a plain counter is safe
		hook = func(shard int, st engine.Stats) {
			onChunk(RangeChunk{Seq: seq, Shard: shard, Stats: st})
			seq++
		}
	}
	st, err := q.ss.BoxStream(ctx, lo, hi, hook)
	if err == nil {
		q.s.recordQueryLatency(start)
	}
	return st, err
}

// Flush commits the write-back dirty buffers of every shard service
// this session's store uses (see WithWriteBack) and returns once every
// previously buffered write has paid its simulated I/O. A no-op
// without write-back or with nothing dirty. A ctx already cancelled or
// past its deadline aborts without flushing — the dirty data stays
// buffered and commits on a later trigger.
func (q *Session) Flush(ctx context.Context) error {
	ctx, err := q.check(ctx)
	if err != nil {
		return err
	}
	return q.ss.Flush(ctx)
}

// Close retires the session, flushing every shard's write-back buffer
// so no write acknowledged through this session is left uncommitted.
// The store and its services stay open for other sessions.
func (q *Session) Close(ctx context.Context) error {
	ctx, err := q.check(ctx)
	if err != nil {
		return err
	}
	return q.ss.Close(ctx)
}

// Stats returns the session's accumulated statistics across all its
// completed operations (summed over the shards it touched).
func (q *Session) Stats() Stats { return q.ss.Totals() }

// CellBlocks returns the store's cell size in blocks.
func (s *Store) CellBlocks() int {
	if cs, ok := s.grp.Member(0).Map.(mapping.CellSized); ok {
		return cs.CellBlocks()
	}
	return 1
}

// Mapping returns the store's placement algorithm.
func (s *Store) Mapping() Mapping { return s.grp.Member(0).Map.Kind() }

// Dims returns the dataset side lengths.
func (s *Store) Dims() []int { return s.dims }

// NumShards returns how many shard volumes the dataset spans (1 unless
// StoreOptions.Shards asked for more).
func (s *Store) NumShards() int { return s.grp.NumShards() }

// ShardOf returns the index of the shard owning a cell — the Dim0 slab
// its first coordinate falls in.
func (s *Store) ShardOf(cell []int) (int, error) { return s.grp.Router().ShardOf(cell) }

// CellLBN returns the volume LBN storing a cell — useful for building
// external indexes over the placement. On a sharded store the address
// is local to the owning shard's volume (see ShardOf); addresses from
// different shards live in different address spaces.
func (s *Store) CellLBN(cell []int) (int64, error) {
	_, vlbn, err := s.grp.CellVLBN(cell)
	return vlbn, err
}

// ShardServiceTotals snapshots every shard service's bookkeeping in
// shard order. Summing all sessions' Stats reproduces the sum of the
// entries' Attributed fields — the attribution-sum property, group
// wide. On the default single shard this is the one-volume
// ServiceTotals in a one-element slice.
func (s *Store) ShardServiceTotals() []ServiceTotals { return s.grp.ServiceTotals() }

// ClassTotals snapshots the per-QoS-class slice of the service
// bookkeeping, merged across every shard service and sorted by class
// name. Each class's Attributed is that class's share of the summed
// ShardServiceTotals Attributed: the attribution-sum property per
// class, group wide (ElapsedMs aside — a shared batch's elapsed time
// is observed once per contributing class).
func (s *Store) ClassTotals() []ClassTotals { return s.grp.ClassTotals() }

// Close retires the store: subsequent operations on it and on its
// sessions fail with ErrClosed, and the shard volumes the store
// created internally (WithShards > 1) have their services drained and
// shut down. The caller's own volume — shard 0 — is untouched; close
// it separately via Volume.Close when desired (operations then fail
// with ErrClosed through the service layer instead). Close is
// idempotent.
func (s *Store) Close() {
	if s.closed.Swap(true) {
		return
	}
	// Commit any write-back dirty data on shard 0 before retiring: the
	// caller's volume outlives the store, and its service should not be
	// left holding this store's buffered writes. The internal shard
	// volumes flush on their own Close (the engine's fifth trigger).
	s.def.ss.Flush(context.Background())
	for _, sv := range s.extra {
		sv.Close()
	}
}

// Flush commits the write-back dirty buffers of every shard service
// (see WithWriteBack) through the store's default session; a no-op
// without write-back. See Session.Flush for the ctx contract.
func (s *Store) Flush(ctx context.Context) error {
	return s.def.Flush(ctx)
}

// Reset restores every shard volume of the store — the caller's and
// the internal ones — to pristine head state, clearing their caches
// and service totals. Like Volume.Reset it is safe under live traffic,
// serializing after in-flight batches on each shard.
func (s *Store) Reset() {
	s.vol.Reset()
	for _, sv := range s.extra {
		sv.Reset()
	}
}

// Beam fetches all cells along dimension dim with the remaining
// coordinates fixed, and returns the simulated I/O statistics (§5.1).
// It runs through the store's default session; ctx carries
// cancellation and deadline.
func (s *Store) Beam(ctx context.Context, dim int, fixed []int) (Stats, error) {
	return s.def.Beam(ctx, dim, fixed)
}

// RangeQuery fetches the box [lo, hi) (hi exclusive per dimension)
// through the store's default session.
func (s *Store) RangeQuery(ctx context.Context, lo, hi []int) (Stats, error) {
	return s.def.RangeQuery(ctx, lo, hi)
}

// Model is the closed-form analytical cost model (§5) for one drive.
type Model struct {
	m    *analytic.Model
	spec *core.CubeSpec
	dims []int
}

// NewModel builds the analytic model for a drive model and dataset
// shape, using the same basic cube MultiMap would choose.
func NewModel(model DiskModel, dims []int) (*Model, error) {
	g, err := disk.ModelByName(string(model))
	if err != nil {
		return nil, err
	}
	v, err := lvm.New(0, g)
	if err != nil {
		return nil, err
	}
	mm, err := core.NewMapping(v, dims, core.MapOptions{DiskIdx: 0})
	if err != nil {
		return nil, err
	}
	return &Model{m: analytic.New(g), spec: mm.Spec(), dims: append([]int(nil), dims...)}, nil
}

// EstimateBeamMs predicts total beam-query I/O time for a mapping
// (Naive or MultiMap).
func (m *Model) EstimateBeamMs(kind Mapping, dim int) (float64, error) {
	switch kind {
	case Naive:
		return m.m.NaiveBeamMs(m.dims, dim)
	case MultiMap:
		return m.m.MultiMapBeamMs(m.spec, m.dims, dim)
	default:
		return 0, fmt.Errorf("multimap: analytic model covers Naive and MultiMap, not %v", kind)
	}
}

// EstimateRangeMs predicts total range-query I/O time for a box with
// q[i] cells per dimension.
func (m *Model) EstimateRangeMs(kind Mapping, q []int) (float64, error) {
	switch kind {
	case Naive:
		return m.m.NaiveRangeMs(m.dims, q)
	case MultiMap:
		return m.m.MultiMapRangeMs(m.spec, m.dims, q)
	default:
		return 0, fmt.Errorf("multimap: analytic model covers Naive and MultiMap, not %v", kind)
	}
}

// BasicCube returns the basic-cube side lengths the mapping chose
// (§4.2) for inspection.
func (m *Model) BasicCube() []int { return append([]int(nil), m.spec.K...) }
