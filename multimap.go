package multimap

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
	"repro/internal/shard"
)

// DiskModel names a simulated drive.
type DiskModel string

// The built-in drive models. The first two are the paper's testbed.
const (
	AtlasTenKIII       DiskModel = "atlas10k3"
	CheetahThirtySixES DiskModel = "cheetah36es"
	SyntheticModern    DiskModel = "modern"
	SmallTestDisk      DiskModel = "smalltest"
	MediumTestDisk     DiskModel = "mediumtest"
)

// DiskModels lists the available drive model names.
func DiskModels() []string { return disk.ModelNames() }

// Mapping selects a data placement algorithm.
type Mapping = mapping.Kind

// The four placements the paper evaluates, plus the Gray-coded curve
// from related work.
const (
	Naive    = mapping.Naive
	ZOrder   = mapping.ZOrder
	Hilbert  = mapping.Hilbert
	Gray     = mapping.Gray
	MultiMap = mapping.MultiMap
)

// Mappings returns the four placements compared in the paper.
func Mappings() []Mapping { return mapping.Kinds() }

// ParseMapping converts a CLI-friendly name ("naive", "zorder",
// "hilbert", "gray", "multimap") to a Mapping.
func ParseMapping(s string) (Mapping, error) { return mapping.ParseKind(s) }

// Stats is the I/O summary of one query; see MsPerCell for the paper's
// headline metric.
type Stats = query.Stats

// ServiceTotals is the per-volume query service's own bookkeeping:
// admission batches served, how many merged concurrent queries, and the
// aggregate attributed Stats that every session's per-query Stats must
// sum to.
type ServiceTotals = engine.ServiceTotals

// Volume is a logical volume over one or more simulated drives,
// exporting the paper's adjacency interface.
//
// All simulated head state lives behind a per-volume query service: a
// single service-loop goroutine (running only while queries are in
// flight) owns the member disks, so any number of stores and sessions
// may query the volume concurrently. Reset is serialized through that
// loop.
type Volume struct {
	v *lvm.Volume

	mu  sync.Mutex
	svc *engine.Service
}

// OpenVolume builds a volume from drive model names with the paper's
// adjacency depth D=128.
func OpenVolume(models ...DiskModel) (*Volume, error) {
	return OpenVolumeDepth(0, models...)
}

// OpenVolumeDepth builds a volume with an explicit adjacency depth
// (0 selects the paper's D=128).
func OpenVolumeDepth(adjDepth int, models ...DiskModel) (*Volume, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("multimap: at least one disk model required")
	}
	geoms := make([]*disk.Geometry, 0, len(models))
	for _, m := range models {
		g, err := disk.ModelByName(string(m))
		if err != nil {
			return nil, err
		}
		geoms = append(geoms, g)
	}
	v, err := lvm.New(adjDepth, geoms...)
	if err != nil {
		return nil, err
	}
	return &Volume{v: v}, nil
}

// NumDisks returns the number of member drives.
func (v *Volume) NumDisks() int { return v.v.NumDisks() }

// TotalBlocks returns the volume capacity in 512-byte blocks.
func (v *Volume) TotalBlocks() int64 { return v.v.TotalBlocks() }

// AdjacencyDepth returns the exported D.
func (v *Volume) AdjacencyDepth() int { return v.v.AdjacencyDepth() }

// GetAdjacent returns up to d adjacent blocks of a volume LBN — the
// first interface call of the paper's LVM (§3.2).
func (v *Volume) GetAdjacent(vlbn int64, d int) ([]int64, error) {
	return v.v.GetAdjacent(vlbn, d)
}

// GetTrackBoundaries returns the half-open LBN interval of the track
// containing vlbn — the second interface call of the paper's LVM.
func (v *Volume) GetTrackBoundaries(vlbn int64) (start, next int64, err error) {
	return v.v.GetTrackBoundaries(vlbn)
}

// service returns the volume's query service, created on first use.
// Its loop goroutine runs only while queries are in flight, so an idle
// volume holds no goroutine. A service found mid-Close is waited out
// (Close is idempotent and returns at quiescence) and replaced, so a
// store built concurrently with Volume.Close still gets a live
// service rather than a permanently dead one.
func (v *Volume) service() *engine.Service {
	for {
		v.mu.Lock()
		if v.svc == nil {
			v.svc = engine.NewService(v.v, engine.ServiceOptions{})
			svc := v.svc
			v.mu.Unlock()
			return svc
		}
		svc := v.svc
		v.mu.Unlock()
		if !svc.Closed() {
			return svc
		}
		v.retire(svc)
	}
}

// retire waits for a closed service to drain and clears it from v.svc
// (unless another goroutine already replaced it). Only after the drain
// may anything else own the disks.
func (v *Volume) retire(svc *engine.Service) {
	svc.Close()
	v.mu.Lock()
	if v.svc == svc {
		v.svc = nil
	}
	v.mu.Unlock()
}

// Reset restores all drives to their initial head positions and clears
// statistics and the extent cache. When the query service is running,
// the reset is serialized after every in-flight batch, so it is safe to
// call while other goroutines query the volume.
func (v *Volume) Reset() {
	for {
		v.mu.Lock()
		svc := v.svc
		if svc == nil {
			// No service: holding mu excludes a concurrent NewStore from
			// starting one mid-reset, so the direct reset is race-free.
			v.v.Reset()
			v.mu.Unlock()
			return
		}
		v.mu.Unlock()
		if svc.Reset() == nil {
			return
		}
		// That service was closed concurrently. Wait out its drain and
		// clear it, then re-evaluate — no spinning while it drains.
		v.retire(svc)
	}
}

// Close shuts the volume's query service, waiting for in-flight
// batches so the caller regains exclusive use of the volume. Queries on
// existing stores and sessions fail afterwards; a new store restarts
// the service. Close is optional — an idle service holds no resources.
func (v *Volume) Close() {
	v.mu.Lock()
	svc := v.svc
	v.mu.Unlock()
	if svc == nil {
		return
	}
	// Drain before forgetting the service: while batches are still in
	// flight the loop goroutine owns the disk head state, so v.svc must
	// keep pointing at it — otherwise a concurrent Reset or NewStore
	// would see "no service" and touch the disks alongside the loop.
	v.retire(svc)
}

// ServiceTotals snapshots the query service's bookkeeping (zero before
// the first store is built).
func (v *Volume) ServiceTotals() ServiceTotals {
	v.mu.Lock()
	svc := v.svc
	v.mu.Unlock()
	if svc == nil {
		return ServiceTotals{}
	}
	return svc.Totals()
}

// Internal exposes the underlying LVM volume for advanced use (the
// experiment drivers and examples use it).
func (v *Volume) Internal() *lvm.Volume { return v.v }

// StoreOptions tunes dataset placement and query execution.
type StoreOptions struct {
	// DiskIdx pins the dataset to one member drive. -1 lets MultiMap
	// decluster basic cubes across drives (§4.4); linear mappings
	// treat -1 as drive 0.
	DiskIdx int
	// CellBlocks is the cell size in blocks (default 1) — §4's
	// "a single cell can occupy multiple LBNs".
	CellBlocks int
	// Policy forces the drive-internal scheduling policy for every
	// query ("fifo", "sptf", "elevator"); empty keeps each mapping's
	// preferred policy (§5.2). Use it for scheduler comparison runs.
	Policy string
	// PlanChunkCells bounds how many cells the streaming planner
	// expands per dispatch chunk; 0 plans each query as one chunk.
	// Chunking bounds planner memory on huge ranges at the cost of
	// sorting per chunk instead of globally.
	PlanChunkCells int64
	// CacheBlocks sizes the volume's shared extent cache in blocks. The
	// cache is a service-level resource: it starts off, a positive value
	// reconfigures it for every store sharing the volume, and 0 leaves
	// the volume's current cache configuration unchanged. Overlapping
	// queries skip re-simulated I/O (Stats.CacheHits).
	CacheBlocks int64
	// MaxInflight is how many plan chunks each of this store's sessions
	// keeps outstanding in the service at once (default 1). Even at 1
	// the planner is pipelined — chunk N+1 is planned while chunk N is
	// on the disks; higher values also let one query's chunks share
	// admission batches.
	MaxInflight int
	// Shards spreads the dataset across this many independent shard
	// volumes, each with its own query-service loop, head state, and
	// extent cache. The grid is partitioned along Dim0 into slabs
	// aligned to MultiMap's basic-cube boundaries; shard 0 lives on the
	// volume passed to NewStore and shards 1..N-1 on internally created
	// volumes mirroring its hardware (release them with Store.Close).
	// Queries scatter-gather: each box is split by owning shard, served
	// by all shard services concurrently, and the per-shard Stats merge
	// by summation. 0 and 1 both mean a single shard on the caller's
	// volume — today's behavior, bit for bit.
	Shards int
	// BatchWindow is the time-based admission window of every shard
	// service this store uses: when positive, the service loop waits
	// the window out after noticing queued work before admitting it as
	// one batch, so bursty concurrent clients coalesce better. Like
	// CacheBlocks it reconfigures the (possibly shared) volume service;
	// 0 leaves the service's current window unchanged (default: admit
	// immediately).
	BatchWindow time.Duration
}

// Store is a mapped multidimensional dataset ready for queries. Its
// query methods submit to the shard services through a default session
// and are safe to call from multiple goroutines; use Begin for
// per-client sessions with their own Stats attribution.
//
// A store always executes through a shard group. The default single
// shard lives on the volume the store was built on, so nothing changes
// for unsharded use; with StoreOptions.Shards > 1 the dataset spans
// that volume plus internally created ones, every query fanning out to
// the shards it touches (see StoreOptions.Shards).
type Store struct {
	vol         *Volume   // primary volume (shard 0)
	extra       []*Volume // internally created shard volumes 1..N-1
	grp         *shard.Group
	dims        []int
	def         *Session
	maxInflight int
}

// NewStore maps an N-dimensional grid dataset (one block per cell)
// onto the volume using the given placement. With StoreOptions.Shards
// > 1, the dataset is split along Dim0 across that many shard volumes
// (the given volume plus internally created clones of its hardware).
func NewStore(vol *Volume, kind Mapping, dims []int, opts ...StoreOptions) (*Store, error) {
	o := StoreOptions{DiskIdx: 0}
	if len(opts) > 1 {
		return nil, fmt.Errorf("multimap: at most one StoreOptions")
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	eo, err := query.ExecOptionsFor(o.Policy, o.PlanChunkCells)
	if err != nil {
		return nil, err
	}
	if o.CacheBlocks < 0 {
		return nil, fmt.Errorf("multimap: CacheBlocks must be non-negative")
	}
	if o.Shards < 0 {
		return nil, fmt.Errorf("multimap: Shards must be non-negative")
	}
	if o.BatchWindow < 0 {
		return nil, fmt.Errorf("multimap: BatchWindow must be non-negative")
	}
	shards := o.Shards
	if shards < 1 {
		shards = 1
	}
	s := &Store{vol: vol, dims: append([]int(nil), dims...)}
	shardVols := []*Volume{vol}
	for i := 1; i < shards; i++ {
		sv := &Volume{v: lvm.NewLike(vol.v)}
		s.extra = append(s.extra, sv)
		shardVols = append(shardVols, sv)
	}
	vols := make([]*lvm.Volume, shards)
	svcs := make([]*engine.Service, shards)
	for i, sv := range shardVols {
		vols[i] = sv.v
		svcs[i] = sv.service()
	}
	s.grp, err = shard.Build(vols, svcs, kind, dims, mapping.Options{
		DiskIdx: o.DiskIdx, CellBlocks: o.CellBlocks,
	}, eo)
	if err != nil {
		return nil, err
	}
	for _, svc := range svcs {
		if o.CacheBlocks > 0 {
			if err := svc.ConfigureCache(o.CacheBlocks); err != nil {
				return nil, err
			}
		}
		if o.BatchWindow > 0 {
			svc.SetBatchWindow(o.BatchWindow)
		}
	}
	if o.MaxInflight < 1 {
		o.MaxInflight = 1
	}
	s.maxInflight = o.MaxInflight
	s.def = s.Begin()
	return s, nil
}

// Session is one client's handle for issuing queries concurrently with
// other sessions on the same shard volumes. Each service loop merges
// in-flight sessions' requests into shared disk batches and attributes
// costs back, so each query's Stats remain its own; on a sharded store
// a query's Stats are the sum of its per-shard parts.
type Session struct {
	s  *Store
	ss *shard.Session
}

// Begin opens a new query session on the store: one engine session per
// shard service, driven scatter-gather. Sessions are bound to the
// services the store was built on: after Volume.Close (or Store.Close
// for internally created shard volumes) they fail like the store's own
// queries, rather than resurrecting a service.
func (s *Store) Begin() *Session {
	return &Session{
		s:  s,
		ss: s.grp.Begin(engine.SessionOptions{MaxInflight: s.maxInflight}),
	}
}

// Beam runs the paper's beam query through this session. On a sharded
// store a Dim0 beam fans out to every shard; beams along the other
// dimensions land on exactly one.
func (q *Session) Beam(dim int, fixed []int) (Stats, error) {
	return q.ss.Beam(dim, fixed)
}

// RangeQuery fetches the box [lo, hi) through this session,
// scatter-gather across the shards the box touches.
func (q *Session) RangeQuery(lo, hi []int) (Stats, error) {
	return q.ss.Box(lo, hi)
}

// Stats returns the session's accumulated statistics across all its
// completed queries (summed over the shards it touched).
func (q *Session) Stats() Stats { return q.ss.Totals() }

// CellBlocks returns the store's cell size in blocks.
func (s *Store) CellBlocks() int {
	if cs, ok := s.grp.Member(0).Map.(mapping.CellSized); ok {
		return cs.CellBlocks()
	}
	return 1
}

// Mapping returns the store's placement algorithm.
func (s *Store) Mapping() Mapping { return s.grp.Member(0).Map.Kind() }

// Dims returns the dataset side lengths.
func (s *Store) Dims() []int { return s.dims }

// NumShards returns how many shard volumes the dataset spans (1 unless
// StoreOptions.Shards asked for more).
func (s *Store) NumShards() int { return s.grp.NumShards() }

// ShardOf returns the index of the shard owning a cell — the Dim0 slab
// its first coordinate falls in.
func (s *Store) ShardOf(cell []int) (int, error) { return s.grp.Router().ShardOf(cell) }

// CellLBN returns the volume LBN storing a cell — useful for building
// external indexes over the placement. On a sharded store the address
// is local to the owning shard's volume (see ShardOf); addresses from
// different shards live in different address spaces.
func (s *Store) CellLBN(cell []int) (int64, error) {
	_, vlbn, err := s.grp.CellVLBN(cell)
	return vlbn, err
}

// ShardServiceTotals snapshots every shard service's bookkeeping in
// shard order. Summing all sessions' Stats reproduces the sum of the
// entries' Attributed fields — the attribution-sum property, group
// wide. On the default single shard this is the one-volume
// ServiceTotals in a one-element slice.
func (s *Store) ShardServiceTotals() []ServiceTotals { return s.grp.ServiceTotals() }

// Close releases the shard volumes the store created internally
// (Shards > 1): their services are drained and shut down, after which
// the store's sessions fail. The caller's own volume — shard 0 — is
// untouched; close it separately via Volume.Close when desired. Close
// is a no-op on an unsharded store and is idempotent.
func (s *Store) Close() {
	for _, sv := range s.extra {
		sv.Close()
	}
}

// Reset restores every shard volume of the store — the caller's and
// the internal ones — to pristine head state, clearing their caches
// and service totals. Like Volume.Reset it is safe under live traffic,
// serializing after in-flight batches on each shard.
func (s *Store) Reset() {
	s.vol.Reset()
	for _, sv := range s.extra {
		sv.Reset()
	}
}

// Beam fetches all cells along dimension dim with the remaining
// coordinates fixed, and returns the simulated I/O statistics (§5.1).
func (s *Store) Beam(dim int, fixed []int) (Stats, error) { return s.def.Beam(dim, fixed) }

// RangeQuery fetches the box [lo, hi) (hi exclusive per dimension).
func (s *Store) RangeQuery(lo, hi []int) (Stats, error) { return s.def.RangeQuery(lo, hi) }

// Model is the closed-form analytical cost model (§5) for one drive.
type Model struct {
	m    *analytic.Model
	spec *core.CubeSpec
	dims []int
}

// NewModel builds the analytic model for a drive model and dataset
// shape, using the same basic cube MultiMap would choose.
func NewModel(model DiskModel, dims []int) (*Model, error) {
	g, err := disk.ModelByName(string(model))
	if err != nil {
		return nil, err
	}
	v, err := lvm.New(0, g)
	if err != nil {
		return nil, err
	}
	mm, err := core.NewMapping(v, dims, core.MapOptions{DiskIdx: 0})
	if err != nil {
		return nil, err
	}
	return &Model{m: analytic.New(g), spec: mm.Spec(), dims: append([]int(nil), dims...)}, nil
}

// EstimateBeamMs predicts total beam-query I/O time for a mapping
// (Naive or MultiMap).
func (m *Model) EstimateBeamMs(kind Mapping, dim int) (float64, error) {
	switch kind {
	case Naive:
		return m.m.NaiveBeamMs(m.dims, dim)
	case MultiMap:
		return m.m.MultiMapBeamMs(m.spec, m.dims, dim)
	default:
		return 0, fmt.Errorf("multimap: analytic model covers Naive and MultiMap, not %v", kind)
	}
}

// EstimateRangeMs predicts total range-query I/O time for a box with
// q[i] cells per dimension.
func (m *Model) EstimateRangeMs(kind Mapping, q []int) (float64, error) {
	switch kind {
	case Naive:
		return m.m.NaiveRangeMs(m.dims, q)
	case MultiMap:
		return m.m.MultiMapRangeMs(m.spec, m.dims, q)
	default:
		return 0, fmt.Errorf("multimap: analytic model covers Naive and MultiMap, not %v", kind)
	}
}

// BasicCube returns the basic-cube side lengths the mapping chose
// (§4.2) for inspection.
func (m *Model) BasicCube() []int { return append([]int(nil), m.spec.K...) }
