package multimap

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mapping"
)

func newUpdatable(t *testing.T, opts UpdateOptions, extra ...Option) *Store {
	t.Helper()
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Open(v, MultiMap, []int{30, 8, 5}, append(extra, Updatable(opts))...)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUpdatableStoreDefaults(t *testing.T) {
	u := newUpdatable(t, UpdateOptions{})
	if _, err := u.LoadCell(context.Background(), []int{1, 2, 3}, 100); err != nil {
		t.Fatal(err)
	}
	n, err := u.Points([]int{1, 2, 3})
	if err != nil || n != 100 {
		t.Fatalf("Points=%d err=%v", n, err)
	}
	// 100 points at capacity 64, fill 0.75 (48/block) -> 3 blocks.
	cl, err := u.ChainLen([]int{1, 2, 3})
	if err != nil || cl != 3 {
		t.Fatalf("ChainLen=%d err=%v, want 3", cl, err)
	}
}

func TestUpdatableInsertOverflowDelete(t *testing.T) {
	u := newUpdatable(t, UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1), ReclaimBelow: Frac(0.3)})
	cell := []int{0, 0, 0}
	for i := 0; i < 10; i++ {
		if _, err := u.Insert(context.Background(), cell); err != nil {
			t.Fatal(err)
		}
	}
	if cl, _ := u.ChainLen(cell); cl != 3 {
		t.Fatalf("ChainLen=%d, want 3 (10 points at 4/block)", cl)
	}
	st, err := u.FetchCell(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 3 {
		t.Fatalf("FetchCell read %d blocks, want 3", st.Cells)
	}
	// Deleting down to 2 points triggers reorganization (2/12 < 0.3).
	for i := 0; i < 8; i++ {
		if _, err := u.Delete(context.Background(), cell); err != nil {
			t.Fatal(err)
		}
	}
	if u.Reorganizations() == 0 {
		t.Error("no reorganization after underflow")
	}
	if cl, _ := u.ChainLen(cell); cl != 1 {
		t.Errorf("chain not compacted: %d", cl)
	}
}

func TestUpdatableFetchCostGrowsWithChain(t *testing.T) {
	u := newUpdatable(t, UpdateOptions{PointsPerBlock: 2, FillFactor: Frac(1)})
	a, b := []int{5, 5, 2}, []int{6, 5, 2}
	if _, err := u.LoadCell(context.Background(), a, 2); err != nil { // one block
		t.Fatal(err)
	}
	if _, err := u.LoadCell(context.Background(), b, 12); err != nil { // six blocks
		t.Fatal(err)
	}
	u.vol.Reset()
	stA, err := u.FetchCell(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	u.vol.Reset()
	stB, err := u.FetchCell(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if stB.TotalMs <= stA.TotalMs {
		t.Errorf("overflowed cell fetch %.2f ms not costlier than clean cell %.2f ms",
			stB.TotalMs, stA.TotalMs)
	}
}

// TestUpdatableWriteCostCharged: updates are real service write ops —
// their simulated I/O shows up in the per-operation Stats.
func TestUpdatableWriteCostCharged(t *testing.T) {
	u := newUpdatable(t, UpdateOptions{PointsPerBlock: 2, FillFactor: Frac(1)})
	sess := u.Begin()
	st, err := sess.Insert(context.Background(), []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != 1 || st.Requests != 1 || st.TotalMs <= 0 {
		t.Fatalf("insert charged no write I/O: %+v", st)
	}
	if st.Cells != 0 {
		t.Fatalf("write blocks leaked into Cells: %+v", st)
	}
	// Overflowing the 2-point home block writes the old tail (chain
	// pointer) and the fresh overflow page.
	if _, err := sess.Insert(context.Background(), []int{3, 3, 3}); err != nil {
		t.Fatal(err)
	}
	st, err = sess.Insert(context.Background(), []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != 2 {
		t.Fatalf("overflowing insert wrote %d blocks, want 2 (tail pointer + new page): %+v", st.Writes, st)
	}
	if got := sess.Stats(); got.Writes != 4 {
		t.Fatalf("session lifetime writes %d, want 4", got.Writes)
	}
}

func TestUpdatableStoreValidation(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{30, 8, 5}
	if _, err := Open(v, MultiMap, dims,
		Updatable(UpdateOptions{OverflowBlocks: 1 << 40})); err == nil {
		t.Error("oversized overflow extent accepted")
	}
	if _, err := Open(v, MultiMap, dims,
		Updatable(UpdateOptions{FillFactor: Frac(2)})); err == nil {
		t.Error("bad fill factor accepted")
	}
	if _, err := Open(v, MultiMap, dims,
		Updatable(UpdateOptions{FillFactor: Frac(0)})); err == nil {
		t.Error("zero fill factor accepted")
	}
	if _, err := Open(v, MultiMap, dims,
		Updatable(UpdateOptions{ReclaimBelow: Frac(1)})); err == nil {
		t.Error("reclaim threshold 1 accepted")
	}
	if _, err := Open(v, MultiMap, dims,
		Updatable(UpdateOptions{ReclaimBelow: Frac(-0.1)})); err == nil {
		t.Error("negative reclaim threshold accepted")
	}
	if _, err := Open(v, MultiMap, dims,
		Updatable(UpdateOptions{PointsPerBlock: -1})); err == nil {
		t.Error("negative PointsPerBlock accepted")
	}
	if _, err := Open(v, MultiMap, dims,
		Updatable(UpdateOptions{OverflowBlocks: -1})); err == nil {
		t.Error("negative OverflowBlocks accepted")
	}
}

// TestUpdatableReclaimZeroDisablesReorganization: an explicit
// ReclaimBelow of zero must mean "never reclaim", not "use the 0.25
// default" — the zero-value sentinel bug.
func TestUpdatableReclaimZeroDisablesReorganization(t *testing.T) {
	u := newUpdatable(t, UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1), ReclaimBelow: Frac(0)})
	cell := []int{2, 2, 2}
	if _, err := u.LoadCell(context.Background(), cell, 12); err != nil { // 3 full blocks
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ { // down to 1/12 occupancy
		if _, err := u.Delete(context.Background(), cell); err != nil {
			t.Fatal(err)
		}
	}
	if n := u.Reorganizations(); n != 0 {
		t.Fatalf("ReclaimBelow=Frac(0) still reorganized %d times", n)
	}
	if cl, _ := u.ChainLen(cell); cl != 3 {
		t.Fatalf("chain compacted to %d blocks despite reclamation off", cl)
	}
}

// TestOverflowExtentCollision: the overflow extent is carved from the
// tail of disk 0, so an OverflowBlocks large enough to reach back into
// the mapped dataset must be rejected at construction.
func TestOverflowExtentCollision(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	// The dataset starts at the head of disk 0; reserving all but 100
	// blocks of the disk reaches into it.
	huge := v.TotalBlocks() - 100
	if _, err := Open(v, MultiMap, []int{30, 8, 5},
		Updatable(UpdateOptions{OverflowBlocks: huge})); err == nil {
		t.Fatal("overflow extent overlapping dataset cells accepted")
	}
	// Same check guards the linear mappings' contiguous extent.
	if _, err := Open(v, Naive, []int{30, 8, 5},
		Updatable(UpdateOptions{OverflowBlocks: huge})); err == nil {
		t.Fatal("overflow extent overlapping naive extent accepted")
	}
	// A tail extent clear of the dataset still works.
	if _, err := Open(v, MultiMap, []int{30, 8, 5},
		Updatable(UpdateOptions{OverflowBlocks: 1000})); err != nil {
		t.Fatalf("non-colliding overflow extent rejected: %v", err)
	}
}

// TestOverflowSpreadAcrossDisks: on a multi-disk volume the overflow
// pool is carved from the tail of every member disk, so a pool too big
// for disk 0's free tail alone still fits — and the collision check
// runs per disk, only rejecting the disks whose extents would reach
// into cells actually mapped there.
func TestOverflowSpreadAcrossDisks(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{30, 8, 5}
	// Probe the dataset's span on disk 0 (the default pinned placement).
	probe, err := Open(v, MultiMap, dims)
	if err != nil {
		t.Fatal(err)
	}
	_, hi := probe.grp.Member(0).Map.(mapping.Spanned).SpanVLBN()
	free0 := v.v.DiskStart(0) + v.v.DiskBlocks(0) - hi
	if free0 <= 0 {
		t.Fatalf("dataset fills disk 0 (span end %d)", hi)
	}
	// 1.5x disk 0's free tail: impossible on disk 0 alone, fine when
	// split across both disks (disk 1 holds no cells at all).
	u, err := Open(v, MultiMap, dims, Updatable(UpdateOptions{OverflowBlocks: free0 * 3 / 2}))
	if err != nil {
		t.Fatalf("overflow pool spanning both disk tails rejected: %v", err)
	}
	// Successive overflow pages alternate disks: force a long chain and
	// check both disks' tails received pages.
	if _, err := u.LoadCell(context.Background(), []int{0, 0, 0}, 64*6); err != nil {
		t.Fatal(err)
	}
	si, _, cs, err := u.route([]int{0, 0, 0})
	if err != nil || si != 0 {
		t.Fatalf("route: shard %d err %v", si, err)
	}
	reqs, err := cs.ReadRequests([]int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[int]int{}
	for _, r := range reqs[1:] {
		di, _, err := v.v.Locate(r.VLBN)
		if err != nil {
			t.Fatal(err)
		}
		onDisk[di]++
	}
	if onDisk[0] == 0 || onDisk[1] == 0 {
		t.Fatalf("overflow pages not spread across disks: %v", onDisk)
	}
	// 3x disk 0's free tail: the per-disk share alone reaches back into
	// disk 0's mapped cells, so the per-disk collision check fires.
	if _, err := Open(v, MultiMap, dims, Updatable(UpdateOptions{OverflowBlocks: free0 * 3})); err == nil {
		t.Fatal("per-disk extent overlapping disk 0's cells accepted")
	}
}

// TestUpdatableShardedRouting: on a sharded updatable store every
// update routes to the shard owning its cell — chains grow in the
// right shard's tracker, fetches pay that shard's disks, and write ops
// land on the owning shard's service.
func TestUpdatableShardedRouting(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{30, 8, 5}
	u, err := Open(v, MultiMap, dims, WithShards(2), WithCache(1<<18),
		Updatable(UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1)}))
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if u.NumShards() != 2 {
		t.Fatalf("NumShards=%d", u.NumShards())
	}
	loCell := []int{0, 0, 0}  // shard 0
	hiCell := []int{29, 7, 4} // shard 1
	if si, _ := u.ShardOf(loCell); si != 0 {
		t.Fatalf("ShardOf(%v)=%d", loCell, si)
	}
	if si, _ := u.ShardOf(hiCell); si != 1 {
		t.Fatalf("ShardOf(%v)=%d", hiCell, si)
	}
	for _, cell := range [][]int{loCell, hiCell} {
		for i := 0; i < 10; i++ { // overflow past the 4-point home block
			if _, err := u.Insert(context.Background(), cell); err != nil {
				t.Fatal(err)
			}
		}
		if n, err := u.Points(cell); err != nil || n != 10 {
			t.Fatalf("Points(%v)=%d err=%v", cell, n, err)
		}
		if cl, err := u.ChainLen(cell); err != nil || cl != 3 {
			t.Fatalf("ChainLen(%v)=%d err=%v, want 3", cell, cl, err)
		}
		st, err := u.FetchCell(context.Background(), cell)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cells != 3 || st.TotalMs <= 0 {
			t.Fatalf("FetchCell(%v) stats wrong: %+v", cell, st)
		}
	}
	// Both shards must have served write ops for their own cells.
	for i, tot := range u.ShardServiceTotals() {
		if tot.WriteOps == 0 {
			t.Fatalf("shard %d served no write ops", i)
		}
	}
	// Cache coherence across the shard boundary: a cached chain fetch
	// must be invalidated by that shard's next insert.
	warm, err := u.FetchCell(context.Background(), hiCell)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits == 0 || warm.TotalMs != 0 {
		t.Fatalf("repeat fetch did not hit the shard's cache: %+v", warm)
	}
	if _, err := u.Insert(context.Background(), hiCell); err != nil {
		t.Fatal(err)
	}
	cold, err := u.FetchCell(context.Background(), hiCell)
	if err != nil {
		t.Fatal(err)
	}
	// The insert dirtied (at least) the block that received the point;
	// its cached extent must be gone, so the fetch pays disk I/O again.
	if cold.CacheMisses == 0 || cold.TotalMs <= 0 {
		t.Fatalf("fetch after insert replayed stale cached extents: %+v", cold)
	}
}

// stripCacheCounters zeroes the accounting fields that legitimately
// differ between cache-on and cache-off runs, leaving every cost field
// for exact comparison.
func stripCacheCounters(st Stats) Stats {
	st.CacheHits, st.CacheMisses = 0, 0
	return st
}

// TestFetchCellCacheCoherence is the headline regression test: with the
// extent cache on, FetchCell after any Insert / Delete / reorganization
// of that cell must return exactly the Stats a cache-off run reports —
// the write path must invalidate stale extents instead of letting the
// cache replay a pre-update chain's cost.
func TestFetchCellCacheCoherence(t *testing.T) {
	opts := UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1), ReclaimBelow: Frac(0.3)}
	cached := newUpdatable(t, opts, WithCache(1<<20))
	plain := newUpdatable(t, opts)
	cell := []int{4, 1, 2}

	both := func(op string, f func(u *Store) (Stats, error)) (Stats, Stats) {
		t.Helper()
		a, err := f(cached)
		if err != nil {
			t.Fatalf("%s (cached): %v", op, err)
		}
		b, err := f(plain)
		if err != nil {
			t.Fatalf("%s (plain): %v", op, err)
		}
		return a, b
	}
	compare := func(op string, a, b Stats) {
		t.Helper()
		if stripCacheCounters(a) != stripCacheCounters(b) {
			t.Fatalf("%s: cache-on stats %+v != cache-off stats %+v", op, a, b)
		}
	}

	if _, err := cached.LoadCell(context.Background(), cell, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.LoadCell(context.Background(), cell, 4); err != nil {
		t.Fatal(err)
	}

	// Cold fetch: identical by construction, and it primes the cache.
	a, b := both("fetch-cold", func(u *Store) (Stats, error) { return u.FetchCell(context.Background(), cell) })
	compare("fetch-cold", a, b)

	// Prove the cache is live: a repeat fetch on the cached store hits
	// and performs no disk I/O (so the two head states stay aligned).
	hit, err := cached.FetchCell(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if hit.CacheHits != 1 || hit.Requests != 0 || hit.TotalMs != 0 {
		t.Fatalf("repeat fetch did not hit the cache: %+v", hit)
	}

	// Insert until the chain overflows to 3 blocks, then fetch: the
	// cached home-block extent must have been invalidated by the
	// inserts, so the fetch pays the full 3-block cost.
	for i := 0; i < 8; i++ {
		if _, err := cached.Insert(context.Background(), cell); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.Insert(context.Background(), cell); err != nil {
			t.Fatal(err)
		}
	}
	if cl, _ := cached.ChainLen(cell); cl != 3 {
		t.Fatalf("chain length %d, want 3", cl)
	}
	a, b = both("fetch-after-insert", func(u *Store) (Stats, error) { return u.FetchCell(context.Background(), cell) })
	if a.CacheHits != 0 {
		t.Fatalf("fetch after inserts replayed a stale cached extent: %+v", a)
	}
	compare("fetch-after-insert", a, b)

	// Delete down to reorganization, then fetch: the compaction dirtied
	// the whole chain, so every cached extent over it must be gone.
	for i := 0; i < 9; i++ {
		if _, err := cached.Delete(context.Background(), cell); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.Delete(context.Background(), cell); err != nil {
			t.Fatal(err)
		}
	}
	if cached.Reorganizations() == 0 {
		t.Fatal("expected a reorganization")
	}
	a, b = both("fetch-after-reorg", func(u *Store) (Stats, error) { return u.FetchCell(context.Background(), cell) })
	if a.CacheHits != 0 {
		t.Fatalf("fetch after reorganization replayed a stale cached extent: %+v", a)
	}
	compare("fetch-after-reorg", a, b)
}

// TestLoadCellFailureStillInvalidates: a bulk load that dies partway
// (overflow extent exhausted) has already dirtied blocks — those must
// still be invalidated before the error surfaces, or a later fetch
// would replay their stale cached cost.
func TestLoadCellFailureStillInvalidates(t *testing.T) {
	u := newUpdatable(t,
		UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1), OverflowBlocks: 1},
		WithCache(1<<20))
	cell := []int{7, 3, 1}
	st, err := u.FetchCell(context.Background(), cell) // primes the cache with the home block
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheMisses != 1 {
		t.Fatalf("priming fetch accounting wrong: %+v", st)
	}
	sess := u.Begin()
	if _, err := sess.LoadCell(context.Background(), cell, 12); err == nil {
		t.Fatal("load past the 1-block overflow extent accepted")
	}
	// The failed load dirtied the home block (and the one page it got);
	// the next fetch must go back to the disks for every chain block.
	st, err = u.FetchCell(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 0 {
		t.Fatalf("fetch after failed load replayed a stale cached extent: %+v", st)
	}
}

// TestUpdatableConcurrentSessions mixes Insert/Delete traffic with beam
// and range queries across concurrent sessions on one cached store —
// the -race exercise for the write path.
func TestUpdatableConcurrentSessions(t *testing.T) {
	u := newUpdatable(t,
		UpdateOptions{PointsPerBlock: 4, FillFactor: Frac(1), ReclaimBelow: Frac(0.3)},
		WithCache(1<<18))
	dims := u.Dims()
	// Preload so deletes have points to remove.
	for x := 0; x < dims[0]; x++ {
		if _, err := u.LoadCell(context.Background(), []int{x, 0, 0}, 6); err != nil {
			t.Fatal(err)
		}
	}

	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := u.Begin()
			rng := rand.New(rand.NewSource(int64(31 + i)))
			for op := 0; op < 40; op++ {
				cell := []int{rng.Intn(dims[0]), 0, 0}
				var err error
				switch rng.Intn(4) {
				case 0:
					_, err = sess.Insert(context.Background(), cell)
				case 1:
					// Deletes race with other sessions' deletes; an
					// emptied cell is not an error for this test.
					if _, derr := sess.Delete(context.Background(), cell); derr != nil {
						continue
					}
				case 2:
					_, err = sess.FetchCell(context.Background(), cell)
				default:
					_, err = sess.RangeQuery(context.Background(), []int{cell[0], 0, 0}, []int{cell[0] + 1, dims[1], dims[2]})
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	tot := u.vol.ServiceTotals()
	if tot.WriteOps == 0 {
		t.Fatal("no write ops reached the service")
	}
	if tot.Attributed.Writes == 0 {
		t.Fatal("no written blocks attributed")
	}
}
