package multimap

import "testing"

func newUpdatable(t *testing.T, opts UpdateOptions) *UpdatableStore {
	t.Helper()
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdatableStore(v, MultiMap, []int{30, 8, 5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUpdatableStoreDefaults(t *testing.T) {
	u := newUpdatable(t, UpdateOptions{})
	if err := u.LoadCell([]int{1, 2, 3}, 100); err != nil {
		t.Fatal(err)
	}
	n, err := u.Points([]int{1, 2, 3})
	if err != nil || n != 100 {
		t.Fatalf("Points=%d err=%v", n, err)
	}
	// 100 points at capacity 64, fill 0.75 (48/block) -> 3 blocks.
	cl, err := u.ChainLen([]int{1, 2, 3})
	if err != nil || cl != 3 {
		t.Fatalf("ChainLen=%d err=%v, want 3", cl, err)
	}
}

func TestUpdatableInsertOverflowDelete(t *testing.T) {
	u := newUpdatable(t, UpdateOptions{PointsPerBlock: 4, FillFactor: 1, ReclaimBelow: 0.3})
	cell := []int{0, 0, 0}
	for i := 0; i < 10; i++ {
		if err := u.Insert(cell); err != nil {
			t.Fatal(err)
		}
	}
	if cl, _ := u.ChainLen(cell); cl != 3 {
		t.Fatalf("ChainLen=%d, want 3 (10 points at 4/block)", cl)
	}
	st, err := u.FetchCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 3 {
		t.Fatalf("FetchCell read %d blocks, want 3", st.Cells)
	}
	// Deleting down to 2 points triggers reorganization (2/12 < 0.3).
	for i := 0; i < 8; i++ {
		if err := u.Delete(cell); err != nil {
			t.Fatal(err)
		}
	}
	if u.Reorganizations() == 0 {
		t.Error("no reorganization after underflow")
	}
	if cl, _ := u.ChainLen(cell); cl != 1 {
		t.Errorf("chain not compacted: %d", cl)
	}
}

func TestUpdatableFetchCostGrowsWithChain(t *testing.T) {
	u := newUpdatable(t, UpdateOptions{PointsPerBlock: 2, FillFactor: 1})
	a, b := []int{5, 5, 2}, []int{6, 5, 2}
	if err := u.LoadCell(a, 2); err != nil { // one block
		t.Fatal(err)
	}
	if err := u.LoadCell(b, 12); err != nil { // six blocks
		t.Fatal(err)
	}
	u.vol.Reset()
	stA, err := u.FetchCell(a)
	if err != nil {
		t.Fatal(err)
	}
	u.vol.Reset()
	stB, err := u.FetchCell(b)
	if err != nil {
		t.Fatal(err)
	}
	if stB.TotalMs <= stA.TotalMs {
		t.Errorf("overflowed cell fetch %.2f ms not costlier than clean cell %.2f ms",
			stB.TotalMs, stA.TotalMs)
	}
}

func TestUpdatableStoreValidation(t *testing.T) {
	v, err := OpenVolumeDepth(32, MediumTestDisk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUpdatableStore(v, MultiMap, []int{30, 8, 5},
		UpdateOptions{OverflowBlocks: 1 << 40}); err == nil {
		t.Error("oversized overflow extent accepted")
	}
	if _, err := NewUpdatableStore(v, MultiMap, []int{30, 8, 5},
		UpdateOptions{FillFactor: 2}); err == nil {
		t.Error("bad fill factor accepted")
	}
}
