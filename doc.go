// Package multimap is a full reproduction of "MultiMap: Preserving disk
// locality for multidimensional datasets" (Shao, Schlosser,
// Papadomanolakis, Schindler, Ailamaki, Ganger; ICDE 2007).
//
// MultiMap places an N-dimensional grid of cells on disk so that the
// first dimension streams at full sequential bandwidth while every
// other dimension follows chains of adjacent blocks — blocks on nearby
// tracks positioned so they can be read right after the head settles,
// with no rotational latency (semi-sequential access).
//
// Because the adjacency model requires drive-internal information that
// modern storage no longer exposes, this package ships a detailed disk
// simulator calibrated to the paper's two drives (Maxtor Atlas 10k III,
// Seagate Cheetah 36ES), a logical volume manager exporting the paper's
// GetAdjacent/GetTrackBoundaries interface, the MultiMap mapping
// algorithm and the three linear mappings it is compared against
// (Naive, Z-order, Hilbert — plus Gray-code), a storage manager with
// the paper's query execution strategies, the three evaluation
// datasets, an analytical cost model, and drivers regenerating every
// figure in the paper's evaluation.
//
// # Execution engine
//
// Every query layer executes through one shared pipeline
// (internal/engine): plan → dispatch → schedule → aggregate. A planner
// — the storage manager (internal/query), the octree and OLAP dataset
// stores, or a tool with a prepared batch — produces a stream of
// request chunks, each tagged with the issue policy the paper's
// storage manager would choose (§5.2). The engine dispatches chunks to
// the logical volume, whose member disks service their sub-batches
// concurrently (one goroutine per drive); each drive applies its
// internal scheduler — a bucketed O(n log n) shortest-positioning-time
// (SPTF) scheduler, or C-LOOK for comparison runs — and the engine
// aggregates completions into Stats. The storage manager's planner
// streams: a query box is sliced along its slowest dimension into
// bounded sub-boxes, so huge ranges never materialize every block at
// once. The WithPolicy and WithChunkCells open options expose the
// scheduler and chunking knobs; cmd/mmbench mirrors them as -policy
// and -chunk.
//
// # Concurrent query service
//
// All simulated head state lives behind a per-volume service loop
// goroutine (running only while queries are in flight): stores and
// their Sessions submit plan chunks to it over a queue, so any number
// of goroutines may query one volume at once. The loop admits everything queued
// since its last pass as one admission batch, coalesces requests
// across the in-flight queries into shared SPTF extents (blocks wanted
// by several queries are read once), and attributes per-request costs
// back to each originating session — every query keeps its own Stats,
// and their sum reproduces the service's totals (Volume.ServiceTotals).
// A batch holding a single chunk is served verbatim, which is why one
// session with the cache off is bit-identical to the synchronous
// engine (cmd/fig6probe's "serve" mode diffs the two). An optional
// shared extent cache — an LRU over coalesced [lbn, lbn+count) block
// extents — lets overlapping queries skip re-simulated I/O entirely,
// with hits and misses surfaced in Stats. Store.Begin opens sessions;
// WithCache and WithMaxInflight (chunks a session keeps in flight;
// planning is pipelined with service either way) are the knobs,
// mirrored by cmd/mmbench as -cache and the -clients/-queries
// throughput mode (-exp serve). Volume.Reset is serialized through the
// loop and safe under live traffic.
//
// # Write path and cache coherence
//
// Updates (§4.6: Insert, Delete, LoadCell on a store opened with the
// Updatable option) are
// first-class write operations on the same service. The cell store
// computes which blocks a mutation dirties and emits them as a write
// request list; the session submits that list as a write op, admitted
// in the same batches as reads. The coherence contract: within one
// admission batch, reads are served before writes (a read admitted
// concurrently with an in-flight write linearizes before it); each
// write then invalidates every cached extent overlapping its mutated
// [lbn, lbn+count) ranges before its simulated I/O cost is charged to
// the submitting session (Stats.Writes, Stats.InvalidatedBlocks).
// Only the service loop goroutine may touch the extent cache, so a
// completed write guarantees that no later FetchCell — from any
// session — can replay a stale, pre-update extent: with the cache on,
// post-update fetch costs are identical to a cache-off run.
// Store.Begin opens sessions that mix queries with updates
// concurrently; cmd/mmbench mirrors the mixed workload as
// -exp serve -writes <fraction>.
//
// # Write-back caching and group commit
//
// WithWriteBack(watermark, interval) switches every service from
// write-through to write-back: the loop absorbs each write op into a
// per-extent dirty buffer and acknowledges it immediately at zero
// simulated cost — repeated writes to the same blocks coalesce
// (Stats.CoalescedWrites) — and the whole dirty set later commits as
// ONE SPTF-scheduled batch (group commit, Stats.FlushBatches). Five
// triggers flush: the dirty-block watermark, the flush interval
// (measured from the oldest dirty write), a read overlapping dirty
// blocks (flush-before-read, so a read never observes pre-write disk
// state), an explicit Store/Session.Flush(ctx), and Close. Dirty
// extents never span disk-segment boundaries, and a buffered write
// still invalidates overlapping cached extents at absorb time, so the
// write-path coherence contract above is unchanged: with the cache
// on, a FetchCell after a buffered-but-unflushed Insert returns
// exactly what a write-back-off store returns. Flush costs are split
// among the sessions whose writes dirtied each extent, proportional
// to blocks contributed, so session totals still sum to
// ServiceTotals.Attributed; ServiceTotals.DirtyBlocks gauges the
// buffer. A cancelled Flush context commits nothing (the dirty set
// stays whole for the next trigger). With write-back off the write
// path is bit-identical to the pre-write-back engine (fig6probe
// diffs empty). cmd/mmbench mirrors the knobs as
// -wb/-wb-watermark/-wb-interval, and -exp burst runs a closed-loop
// burst workload of three QoS classes (interactive/bulk/writer)
// reporting p50/p99/p999 host latency per class, persisted via -json
// under the mmbench-burst/v3 schema — which adds host wall-clock
// seconds, GOMAXPROCS, allocations per operation, and the pipeline
// depth, so the committed trajectory (BENCH_6.json through
// BENCH_9.json, validated by cmd/benchtraj) tracks host efficiency
// alongside simulated latency.
//
// # Sharded scatter-gather execution
//
// One logical dataset can span several shards (WithShards,
// internal/shard): shard 0 lives on the volume passed to Open and the
// rest on internally created volumes mirroring its hardware, each
// with its own service loop, head state, and extent cache. A
// deterministic router partitions the grid along Dim0 into slabs
// aligned to MultiMap's basic-cube boundaries, so every shard keeps
// the paper's sequential and semi-sequential locality; each shard maps
// its slab onto its own volume with the same placement. Store.Begin
// then returns a scatter-gather session — one engine session per shard
// — that splits every query box by owning shard, runs the per-shard
// streaming plans through all shard services concurrently (shards
// scale across CPUs, not just across an admission batch), and merges
// the per-shard Stats by summation, so session totals still sum to the
// per-shard service totals (Store.ShardServiceTotals): the attribution
// property holds group-wide. Updates route to the shard owning their
// cell, with a per-shard overflow pool spread round-robin across that
// shard's member-disk tails. With one shard the group degenerates to
// exactly the single-volume stack, so the default path is unchanged
// bit for bit (cmd/fig6probe's "shard" mode diffs the two).
// Store.Close releases the internal shard volumes; Store.Reset
// restores all of them. cmd/mmbench mirrors the knob as
// -exp serve -shards N, printing queries/sec at 1, 2, 4, ... N shards;
// WithBatchWindow (mmbench -window) adds a time-based admission window
// so bursty clients coalesce into shared batches.
//
// # Context-first API: cancellation, deadlines, QoS admission
//
// The public surface is one capability-unified Store: Open maps a
// dataset with functional options, Updatable(UpdateOptions) enables
// the §4.6 write path, and every blocking operation — Beam,
// RangeQuery, FetchCell, Insert, Delete, LoadCell, on the Store or on
// its Sessions — takes a context.Context first.
//
// Cancellation flows through every layer. The streaming planner stops
// between chunks; the service loop drops a cancelled operation's
// queued chunks before admission, so work never issued is never
// charged simulated I/O; on a sharded store the first part to fail
// cancels its sibling shards' remaining work (errgroup-style). A
// cancelled operation returns the partial Stats of the work that WAS
// issued alongside the context's error, with
// Stats.Cancelled/DeadlineExceeded counting the dropped operations —
// and the attribution-sum property survives: session totals still sum
// to ServiceTotals.Attributed for issued work. Closed stores and
// volumes fail fast with ErrClosed.
//
// Deadlines are the QoS signal. With WithDeadlineAging(d), each
// admission pass serves urgent requests — those whose context carries
// a deadline, and those queued at least d — first, as their own batch
// ordered by effective deadline, never coalesced with the pass's bulk:
// an old or urgent request bounds how long coalescing may delay it, so
// a hot cache or a big concurrent batch cannot starve a
// latency-sensitive session. examples/deadline demonstrates both the
// partial-stats contract and the fairness effect; cmd/mmbench mirrors
// the knobs as -exp serve -deadline/-aging and reports the deadline
// session's ms/query plus cancelled/expired drop counts. With
// background contexts and aging off, admission stays in submission
// order — bit-identical to the pre-QoS engine.
//
// # Weighted-fair QoS classes and the partitioned cache
//
// WithFairShare(quantum) generalizes urgent-first into full
// weighted-fair admission. Sessions declare a QoS class
// (Store.BeginQoS, or WithQoS for the store's default session);
// WithQoSClass(name, weight, urgent) registers each class's share.
// Every admission pass runs deficit round-robin over the queued ops'
// SIMULATED block cost: each backlogged class earns quantum × weight
// blocks of credit, admits its ops FIFO while the credit covers them,
// and carries the unused deficit into the next pass (reset when the
// class drains, so an idle class cannot hoard credit); admitted
// classes are served cheapest group first, and a class whose op
// exceeds its credit still admits one op per pass (no livelock), the
// rest counted in ClassTotals.Deferred. Urgent work — an explicit
// deadline, an op aged past WithDeadlineAging, or a class registered
// urgent — keeps strict priority ahead of all weighted sharing. The
// same weights partition the shared extent cache into per-class
// reserve floors (capacity × weight / Σweights): any class may borrow
// idle capacity, but over-capacity eviction reclaims over-reserve
// extents (LRU-most first), so a bulk scan can no longer evict an
// interactive session's hot extents below its floor. Expired range
// queries return speculative partial results: the merged Stats of the
// work already issued come back with Stats.Partial set alongside the
// context's error, so a caller can use a partial aggregate instead of
// discarding it. Per-class bookkeeping (ops, urgent ops, deferrals,
// attributed Stats — summing to ServiceTotals.Attributed per class,
// group-wide on a sharded store) is surfaced by Store.ClassTotals.
// With WithFairShare omitted, admission, cache, and Stats are
// bit-identical to the pre-QoS engine (fig6probe diffs empty).
// cmd/mmbench mirrors the knob as -fair <quantum> (the burst
// workload registers interactive/bulk/writer at weights 1/4/1), and
// its -cpuprofile/-memprofile flags write pprof profiles for hunting
// scheduler hot spots: run e.g.
//
//	mmbench -exp burst -clients 6 -wb -fair 4096 -cpuprofile cpu.pb.gz
//	go tool pprof cpu.pb.gz
//
// # Multi-tenant volume pool: thin provisioning, growth, snapshots
//
// OpenPool builds a placement layer above everything else: a pool of
// simulated drives hosting many tenant datasets at once (internal/pool
// over the segment-mapped LVM). Pool.Create carves thin-provisioned
// volumes from the pooled drives — track-aligned extents, possibly
// non-contiguous and spread across drives — and opens an ordinary
// Store over them under live traffic from other tenants; WithCapacity
// sets the initial size (default auto-sizes from the dataset shape)
// and WithDrives restricts placement. Pool.Grow extends a tenant
// online, lvextend-style: the new extents publish atomically to the
// running services (in-flight batches finish on the old extent table),
// and on an updatable store they immediately join the §4.6 overflow
// pools, so chains grow past the initial capacity without re-opening
// anything. Pool.Snapshot freezes a tenant copy-on-write and
// Pool.Clone materializes new tenants from the frozen image: clone
// reads fall through to the shared extents at zero extra pool space,
// and the first write to a frozen track — by parent or clone — pays a
// copy-out fault (read the shared track, remap it onto a private
// extent), charged to the writing session like any write and counted
// in Stats.CowFaultBlocks. Pool.Destroy flushes, drains, and returns
// the tenant's extents to the pool; Pool.Tenants and Pool.Usage
// surface per-tenant and per-drive accounting.
//
// The COW-versus-write-back coherence contract: Snapshot flushes the
// tenant's write-back dirty buffers before freezing, so acknowledged
// writes are always in the frozen image and dirty data never straddles
// a freeze; after the snapshot, the write path resolves a write's COW
// faults before absorbing it into the dirty buffer, so buffered dirty
// extents only ever cover private (never shared) storage and group
// commit needs no COW awareness. A tenant whose volumes fully own
// their drives behaves bit-identically to the classic single-tenant
// path — the pool layer costs nothing when unused (fig6probe diffs
// empty).
//
// WithAutoGrow(increment) arms every updatable tenant with online
// capacity growth: when an Insert or LoadCell exhausts the tenant's
// overflow pool, the store grows the tenant by the increment (the
// same path as Pool.Grow) and retries transparently — a bulk load
// larger than one increment simply loops — so the update succeeds
// without the caller ever seeing core.ErrOverflowExhausted. A
// genuinely full drive still errors. Auto-grown capacity is audited
// per drive in Pool.Usage (DriveUsage.AutoGrownBlocks); cmd/mmbench's
// -exp tenants workload exercises the path and persists the total in
// its artifact.
//
// # Pipelined batch dispatch
//
// WithPipeline(depth) overlaps the service loop's pipeline stages —
// admit → schedule → dispatch → complete/attribute — instead of
// running them in lockstep. The scheduling stage stays the sole owner
// of the extent cache, dirty buffer, and COW state, so every
// coherence contract above is computed exactly as in lockstep; only
// the simulated disk service of already-scheduled batches (the
// dominant host cost) runs concurrently, on per-disk completion
// queues up to the configured depth. Batches retire in issue order,
// so attribution, Stats, and ServiceTotals are unchanged — session
// sums still equal ServiceTotals.Attributed at any depth — and
// simulated time is untouched: only host wall-clock changes. A read
// overlapping a still-in-flight write stalls the pipeline for exactly
// that dependency; cancellation drops undispatched batches costlessly.
// Depth 0 (the default) is the lockstep loop, bit-identical to the
// pre-pipeline engine (fig6probe diffs empty). cmd/mmbench mirrors
// the knob as -pipeline.
//
// # Network daemon: sessions over the wire
//
// cmd/mmserved wraps all of the above in a long-running daemon
// (internal/server, stdlib net/http): remote clients open stores and
// pools, begin plain or QoS sessions, and run every session operation
// over JSON endpoints — with range queries streamed as NDJSON, one
// chunk line flushed to the client as the engine retires it (the
// streaming planner's chunks go over the wire instead of buffering the
// query), closed by a trailer carrying the aggregate Stats, the
// session's lifetime Stats, and per-class totals. Wire-level
// cancellation and deadlines land in the engine exactly like embedded
// callers': a client disconnect cancels the request's context (queued
// chunks are dropped into Stats.Cancelled with attribution sums
// intact), and a ?deadline_ms= parameter becomes a context deadline
// feeding the deadline/QoS-aware admission. GET /v1/events is a
// Server-Sent Events feed interleaving lifecycle events with periodic
// Metrics snapshots — Store.Metrics() aggregates per-service queue
// depth, admission-batch evidence, cache hit rate, per-class totals,
// and p50/p99 completed-query host latency from a fixed-size latency
// ring, all lock-cheap so scraping never blocks admission. cmd/mmbench
// mirrors the client side as -remote <addr> -store <name>, driving
// serve-style load against a live daemon and reporting first-chunk
// latency (the streaming proof) alongside the usual tables. With the
// daemon out of the picture the library path is untouched — fig6probe
// diffs stay empty.
//
// Quick start:
//
//	vol, _ := multimap.OpenVolume(multimap.AtlasTenKIII)
//	store, _ := multimap.Open(vol, multimap.MultiMap, []int{259, 259, 259})
//	stats, _ := store.Beam(context.Background(), 1, []int{10, 0, 42}) // beam along Dim1
//	fmt.Printf("%.3f ms/cell\n", stats.MsPerCell())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure.
package multimap
